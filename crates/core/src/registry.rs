//! Versioned, crash-safe on-disk model registry for the streaming
//! subsystem.
//!
//! A registry directory holds one file per published model generation,
//! named `gen-NNNNNN.prcm`, plus a `CURRENT` text file naming the
//! serving generation. The entry bytes are exactly
//! [`encode_model`] of the published model — the generation number
//! lives *only* in the filename and `CURRENT`, so a registry entry is
//! byte-identical to an offline serialization of the same model (the
//! streaming determinism tests rely on this).
//!
//! # `PRCM` format (version 1)
//!
//! All integers little-endian:
//!
//! ```text
//! magic    4  b"PRCM"
//! version  1  u8 = 1
//! distance 1  u8 (0 = Manhattan, 1 = Euclidean, 2 = Chebyshev)
//! k        4  u32   cluster count
//! d        4  u32   dimensionality
//! n        8  u64   point count
//! objective            8 f64
//! iterative_objective  8 f64
//! rounds               8 u64
//! improvements         8 u64
//! k × cluster:
//!   medoid_index 8 u64
//!   sphere       8 f64
//!   |dims|       4 u32, then |dims| × u32 (each < d, ascending)
//!   medoid       d × f64
//!   centroid     d × f64
//! assignment  n × i64 (cluster index, or -1 for outlier)
//! checksum    8 u64   FNV-1a over everything above
//! ```
//!
//! Members, outliers, and centroids' member lists are rebuilt from the
//! assignment on decode. [`crate::model::FitDiagnostics`] is
//! deliberately **not** serialized: it describes how a fit ran, not
//! what the model is, and excluding it keeps the byte-identity
//! guarantee independent of trace-level bookkeeping.
//!
//! # Crash safety
//!
//! Every write goes through temp-file + `fsync` + atomic rename (the
//! same discipline as `proclus-data`'s binary I/O). A crash can
//! therefore leave only (a) a stray `*.tmp` file, (b) a fully-written
//! entry not yet named by `CURRENT`, or (c) a missing/corrupt
//! `CURRENT`. [`ModelRegistry::open`] runs a recovery scan that
//! quarantines partial/corrupt entries (renaming them to
//! `*.quarantined` so nothing ever parses them again) and repairs
//! `CURRENT` to the highest valid generation.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use proclus_math::{fnv1a64, DistanceKind};

use crate::model::ProclusModel;

/// Magic bytes opening every serialized model.
pub const MODEL_MAGIC: [u8; 4] = *b"PRCM";
/// Current `PRCM` format version.
pub const MODEL_VERSION: u8 = 1;
/// Name of the pointer file naming the serving generation.
pub const CURRENT_FILE: &str = "CURRENT";

/// Why a byte buffer failed to parse as a `PRCM` model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelCodecError {
    /// Byte offset at which decoding failed.
    pub offset: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for ModelCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for ModelCodecError {}

/// Reasons a registry operation can fail.
#[derive(Debug)]
pub enum RegistryError {
    /// An I/O operation failed on `path`.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// An entry's bytes are not a valid `PRCM` model.
    Corrupt {
        /// The entry file.
        path: PathBuf,
        /// Byte offset at which decoding failed.
        offset: usize,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io { path, source } => {
                write!(f, "registry I/O error on {}: {source}", path.display())
            }
            RegistryError::Corrupt {
                path,
                offset,
                reason,
            } => write!(
                f,
                "corrupt registry entry {} at byte {offset}: {reason}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for RegistryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RegistryError::Io { source, .. } => Some(source),
            RegistryError::Corrupt { .. } => None,
        }
    }
}

/// What [`ModelRegistry::open`]'s recovery scan found and did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryReport {
    /// Generations that parsed cleanly, ascending.
    pub valid: Vec<u64>,
    /// Files quarantined (renamed to `*.quarantined`) and why.
    pub quarantined: Vec<(PathBuf, String)>,
    /// `true` when `CURRENT` was missing, unparsable, or dangling and
    /// had to be rewritten (or removed, when no valid entry exists).
    pub current_repaired: bool,
}

impl RecoveryReport {
    /// `true` when the scan found a fully healthy registry.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && !self.current_repaired
    }
}

// ---------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------

fn distance_tag(kind: DistanceKind) -> u8 {
    match kind {
        DistanceKind::Manhattan => 0,
        DistanceKind::Euclidean => 1,
        DistanceKind::Chebyshev => 2,
    }
}

fn distance_from_tag(tag: u8) -> Option<DistanceKind> {
    match tag {
        0 => Some(DistanceKind::Manhattan),
        1 => Some(DistanceKind::Euclidean),
        2 => Some(DistanceKind::Chebyshev),
        _ => None,
    }
}

/// Serialize a model to the `PRCM` format (see the module docs).
///
/// The output is a pure function of the model's *clustering* content
/// (diagnostics are excluded), so two byte-identical models always
/// serialize to byte-identical buffers.
pub fn encode_model(model: &ProclusModel) -> Vec<u8> {
    let k = model.clusters.len();
    let d = model.clusters.first().map(|c| c.medoid.len()).unwrap_or(0);
    let n = model.assignment.len();
    let mut out = Vec::with_capacity(46 + k * (28 + 16 * d) + 8 * n + 8);
    out.extend_from_slice(&MODEL_MAGIC);
    out.push(MODEL_VERSION);
    out.push(distance_tag(model.distance));
    out.extend_from_slice(&(k as u32).to_le_bytes());
    out.extend_from_slice(&(d as u32).to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&model.objective.to_le_bytes());
    out.extend_from_slice(&model.iterative_objective.to_le_bytes());
    out.extend_from_slice(&(model.rounds as u64).to_le_bytes());
    out.extend_from_slice(&(model.improvements as u64).to_le_bytes());
    for c in &model.clusters {
        out.extend_from_slice(&(c.medoid_index as u64).to_le_bytes());
        out.extend_from_slice(&c.sphere_of_influence.to_le_bytes());
        out.extend_from_slice(&(c.dimensions.len() as u32).to_le_bytes());
        for &dim in &c.dimensions {
            out.extend_from_slice(&(dim as u32).to_le_bytes());
        }
        for &v in &c.medoid {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &v in &c.centroid {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    for a in &model.assignment {
        let v: i64 = match a {
            Some(i) => *i as i64,
            None => -1,
        };
        out.extend_from_slice(&v.to_le_bytes());
    }
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    offset: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize, what: &str) -> Result<&'a [u8], ModelCodecError> {
        let end = self
            .offset
            .checked_add(len)
            .filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.offset..end];
                self.offset = end;
                Ok(s)
            }
            None => Err(ModelCodecError {
                offset: self.offset,
                reason: format!("truncated while reading {what} ({len} bytes)"),
            }),
        }
    }

    fn u32(&mut self, what: &str) -> Result<u32, ModelCodecError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ModelCodecError> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn i64(&mut self, what: &str) -> Result<i64, ModelCodecError> {
        Ok(self.u64(what)? as i64)
    }

    fn f64(&mut self, what: &str) -> Result<f64, ModelCodecError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn f64_vec(&mut self, len: usize, what: &str) -> Result<Vec<f64>, ModelCodecError> {
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.f64(what)?);
        }
        Ok(v)
    }

    fn fail<T>(&self, reason: String) -> Result<T, ModelCodecError> {
        Err(ModelCodecError {
            offset: self.offset,
            reason,
        })
    }
}

/// Deserialize a `PRCM` buffer back into a model.
///
/// The trailing checksum is verified *before* any structural parsing,
/// so a bit flip anywhere in the file is reported as a checksum
/// mismatch rather than as whatever field it happened to land in.
/// Member lists and outliers are rebuilt from the assignment; the
/// decoded model carries default (empty) diagnostics.
///
/// # Errors
///
/// [`ModelCodecError`] locating the first offending byte.
pub fn decode_model(bytes: &[u8]) -> Result<ProclusModel, ModelCodecError> {
    if bytes.len() < MODEL_MAGIC.len() + 2 + 8 {
        return Err(ModelCodecError {
            offset: bytes.len(),
            reason: format!("{} bytes is too short to be a PRCM model", bytes.len()),
        });
    }
    let body = &bytes[..bytes.len() - 8];
    let mut tail = [0u8; 8];
    tail.copy_from_slice(&bytes[bytes.len() - 8..]);
    let stored = u64::from_le_bytes(tail);
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(ModelCodecError {
            offset: bytes.len() - 8,
            reason: format!("checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"),
        });
    }
    let mut cur = Cursor {
        buf: body,
        offset: 0,
    };
    let magic = cur.take(4, "magic")?;
    if magic != MODEL_MAGIC {
        return Err(ModelCodecError {
            offset: 0,
            reason: format!("bad magic {magic:?} (expected {MODEL_MAGIC:?})"),
        });
    }
    let version = cur.take(1, "version")?[0];
    if version != MODEL_VERSION {
        return cur.fail(format!(
            "unsupported PRCM version {version} (supported: {MODEL_VERSION})"
        ));
    }
    let dist_tag = cur.take(1, "distance tag")?[0];
    let Some(distance) = distance_from_tag(dist_tag) else {
        return cur.fail(format!("unknown distance tag {dist_tag}"));
    };
    let k = cur.u32("cluster count")? as usize;
    let d = cur.u32("dimensionality")? as usize;
    let n = cur.u64("point count")? as usize;
    // Implausible-size guard: reject before allocating. The remaining
    // body must hold k clusters and n assignment entries.
    let min_body = k
        .checked_mul(28 + 16 * d)
        .and_then(|c| c.checked_add(n.checked_mul(8)?))
        .and_then(|c| c.checked_add(cur.offset + 32));
    if min_body.is_none_or(|m| m > body.len()) {
        return cur.fail(format!(
            "implausible header (k = {k}, d = {d}, n = {n}) for a {}-byte body",
            body.len()
        ));
    }
    let objective = cur.f64("objective")?;
    let iterative_objective = cur.f64("iterative objective")?;
    let rounds = cur.u64("rounds")? as usize;
    let improvements = cur.u64("improvements")? as usize;
    let mut clusters = Vec::with_capacity(k);
    for i in 0..k {
        let medoid_index = cur.u64("medoid index")? as usize;
        let sphere = cur.f64("sphere of influence")?;
        let dims_len = cur.u32("dimension count")? as usize;
        if dims_len > d {
            return cur.fail(format!(
                "cluster {i} claims {dims_len} dimensions in {d}-dimensional data"
            ));
        }
        let mut dims = Vec::with_capacity(dims_len);
        for _ in 0..dims_len {
            let dim = cur.u32("dimension")? as usize;
            if dim >= d {
                return cur.fail(format!(
                    "cluster {i} dimension {dim} out of range (d = {d})"
                ));
            }
            dims.push(dim);
        }
        let medoid = cur.f64_vec(d, "medoid")?;
        let centroid = cur.f64_vec(d, "centroid")?;
        clusters.push(crate::model::ProjectedCluster {
            medoid_index,
            medoid,
            dimensions: dims,
            members: Vec::new(),
            centroid,
            sphere_of_influence: sphere,
        });
    }
    let mut assignment = Vec::with_capacity(n);
    let mut outliers = Vec::new();
    for p in 0..n {
        let a = cur.i64("assignment")?;
        if a < 0 {
            outliers.push(p);
            assignment.push(None);
        } else {
            let i = a as usize;
            if i >= k {
                return cur.fail(format!("point {p} assigned to cluster {i} but k = {k}"));
            }
            clusters[i].members.push(p);
            assignment.push(Some(i));
        }
    }
    if cur.offset != body.len() {
        return cur.fail(format!(
            "{} trailing bytes after a complete model",
            body.len() - cur.offset
        ));
    }
    Ok(ProclusModel {
        clusters,
        outliers,
        assignment,
        objective,
        iterative_objective,
        rounds,
        improvements,
        distance,
        diagnostics: crate::model::FitDiagnostics::default(),
    })
}

// ---------------------------------------------------------------------
// Atomic writes (local copy: core does not depend on proclus-data)
// ---------------------------------------------------------------------

fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), RegistryError> {
    let tmp = tmp_path(path);
    let io_err = |p: &Path, e: io::Error| RegistryError::Io {
        path: p.to_path_buf(),
        source: e,
    };
    let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
    f.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
    f.sync_all().map_err(|e| io_err(&tmp, e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    // Durability of the rename itself: fsync the directory when
    // possible (best-effort — some filesystems reject directory opens).
    if let Some(parent) = path.parent() {
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

fn entry_name(generation: u64) -> String {
    format!("gen-{generation:06}.prcm")
}

fn parse_entry_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("gen-")?.strip_suffix(".prcm")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// A versioned directory of published models with a `CURRENT` pointer.
///
/// See the module docs for the on-disk layout and crash-safety
/// contract. All mutation goes through [`ModelRegistry::publish`].
#[derive(Debug)]
pub struct ModelRegistry {
    dir: PathBuf,
    valid: Vec<u64>,
    current: Option<u64>,
}

impl ModelRegistry {
    /// Open (creating if needed) the registry at `dir`, running the
    /// recovery scan: corrupt or partial entries and stray `*.tmp`
    /// files are renamed to `*.quarantined`, and `CURRENT` is repaired
    /// to the highest valid generation when missing, unparsable, or
    /// dangling.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] when the directory cannot be created,
    /// listed, or repaired. Corrupt *entries* are never an error here —
    /// they are quarantined and reported in the [`RecoveryReport`].
    pub fn open(dir: &Path) -> Result<(Self, RecoveryReport), RegistryError> {
        let io_err = |p: &Path, e: io::Error| RegistryError::Io {
            path: p.to_path_buf(),
            source: e,
        };
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let mut report = RecoveryReport::default();
        let mut names: Vec<String> = Vec::new();
        for entry in fs::read_dir(dir).map_err(|e| io_err(dir, e))? {
            let entry = entry.map_err(|e| io_err(dir, e))?;
            if let Some(name) = entry.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        names.sort();
        let mut quarantine = |path: PathBuf, reason: String| -> Result<(), RegistryError> {
            let mut os = path.as_os_str().to_os_string();
            os.push(".quarantined");
            let dest = PathBuf::from(os);
            fs::rename(&path, &dest).map_err(|e| io_err(&path, e))?;
            report.quarantined.push((path, reason));
            Ok(())
        };
        for name in &names {
            let path = dir.join(name);
            if name.ends_with(".tmp") {
                quarantine(path, "stray temp file from an interrupted write".into())?;
                continue;
            }
            let Some(generation) = parse_entry_name(name) else {
                continue;
            };
            let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
            match decode_model(&bytes) {
                Ok(_) => report.valid.push(generation),
                Err(e) => quarantine(path, e.to_string())?,
            }
        }
        report.valid.sort_unstable();
        report.valid.dedup();

        let current_path = dir.join(CURRENT_FILE);
        let named: Option<u64> = match fs::read_to_string(&current_path) {
            Ok(s) => s.trim().parse().ok(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(io_err(&current_path, e)),
        };
        let best = report.valid.last().copied();
        let current = match (named, best) {
            // CURRENT names a valid entry: healthy. This is also the
            // mid-rollover-crash case (entry written, pointer never
            // flipped): the pointer flip is the commit point, so the
            // *previous* model keeps serving and the orphaned entry is
            // simply superseded by the next publish.
            (Some(g), _) if report.valid.contains(&g) => Some(g),
            // CURRENT missing/corrupt/dangling but entries exist:
            // repair to the highest valid generation.
            (_, Some(best)) => {
                if named != Some(best) {
                    write_atomic(&current_path, format!("{best}\n").as_bytes())?;
                    report.current_repaired = true;
                }
                Some(best)
            }
            // No valid entries at all: remove a lying CURRENT.
            (Some(_), None) => {
                fs::remove_file(&current_path).map_err(|e| io_err(&current_path, e))?;
                report.current_repaired = true;
                None
            }
            (None, None) => None,
        };
        Ok((
            ModelRegistry {
                dir: dir.to_path_buf(),
                valid: report.valid.clone(),
                current,
            },
            report,
        ))
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Valid generations, ascending.
    pub fn generations(&self) -> &[u64] {
        &self.valid
    }

    /// The serving generation named by `CURRENT`, if any.
    pub fn current(&self) -> Option<u64> {
        self.current
    }

    /// Path of the entry file for `generation`.
    pub fn entry_path(&self, generation: u64) -> PathBuf {
        self.dir.join(entry_name(generation))
    }

    /// Load the model stored as `generation`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] when the entry cannot be read,
    /// [`RegistryError::Corrupt`] when its bytes do not parse.
    pub fn load(&self, generation: u64) -> Result<ProclusModel, RegistryError> {
        let path = self.entry_path(generation);
        let bytes = fs::read(&path).map_err(|e| RegistryError::Io {
            path: path.clone(),
            source: e,
        })?;
        decode_model(&bytes).map_err(|e| RegistryError::Corrupt {
            path,
            offset: e.offset,
            reason: e.reason,
        })
    }

    /// Load the serving model (`CURRENT`), or `None` when the registry
    /// is empty.
    ///
    /// # Errors
    ///
    /// Same as [`ModelRegistry::load`].
    pub fn load_current(&self) -> Result<Option<(u64, ProclusModel)>, RegistryError> {
        match self.current {
            Some(g) => Ok(Some((g, self.load(g)?))),
            None => Ok(None),
        }
    }

    /// Read the `CURRENT` pointer **from disk** rather than from this
    /// handle's cached view, so a generation published by another
    /// process (e.g. `proclus stream` promoting during a rollover) is
    /// visible without reopening the registry.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] when the pointer file exists but cannot be
    /// read; [`RegistryError::Corrupt`] when its contents do not parse
    /// as a generation number. A missing pointer is `Ok(None)`.
    pub fn current_generation_on_disk(&self) -> Result<Option<u64>, RegistryError> {
        let path = self.dir.join(CURRENT_FILE);
        match fs::read_to_string(&path) {
            Ok(s) => match s.trim().parse::<u64>() {
                Ok(g) => Ok(Some(g)),
                Err(_) => Err(RegistryError::Corrupt {
                    path,
                    offset: 0,
                    reason: format!("CURRENT does not name a generation: {:?}", s.trim()),
                }),
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(RegistryError::Io { path, source: e }),
        }
    }

    /// Load the serving model using a fresh on-disk read of `CURRENT`.
    ///
    /// This is the TOCTOU-hardened serving path: between reading the
    /// pointer and opening the entry, a concurrent writer may retire
    /// the named generation (publish then prune). When the entry turns
    /// out to be missing, the pointer is re-read — if it moved, the
    /// load retries against the new generation (bounded, so a
    /// pathological writer cannot livelock a reader); if it did not
    /// move, the registry really is dangling and the typed I/O error
    /// is returned as-is. Either way the race surfaces as a
    /// [`RegistryError`], never a panic.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] / [`RegistryError::Corrupt`] as
    /// [`ModelRegistry::load`] and
    /// [`ModelRegistry::current_generation_on_disk`].
    pub fn load_current_fresh(&self) -> Result<Option<(u64, ProclusModel)>, RegistryError> {
        const MAX_POINTER_CHASES: usize = 3;
        let mut generation = match self.current_generation_on_disk()? {
            Some(g) => g,
            None => return Ok(None),
        };
        for _ in 0..MAX_POINTER_CHASES {
            match self.load(generation) {
                Ok(model) => return Ok(Some((generation, model))),
                Err(RegistryError::Io { path, source })
                    if source.kind() == io::ErrorKind::NotFound =>
                {
                    // Entry vanished after we read the pointer. Re-read
                    // it: a moved pointer means a writer raced us and we
                    // should chase; an unchanged pointer is a genuinely
                    // dangling registry.
                    match self.current_generation_on_disk()? {
                        Some(g) if g != generation => generation = g,
                        _ => return Err(RegistryError::Io { path, source }),
                    }
                }
                Err(e) => return Err(e),
            }
        }
        // Pointer kept moving for MAX_POINTER_CHASES loads; report the
        // last target as unavailable rather than spinning forever.
        Err(RegistryError::Io {
            path: self.entry_path(generation),
            source: io::Error::new(
                io::ErrorKind::NotFound,
                "CURRENT kept moving while chasing it; entry never observed",
            ),
        })
    }

    /// Publish `model` as the next generation and point `CURRENT` at
    /// it. Both writes are atomic and the `CURRENT` flip is the commit
    /// point: a crash *between* them leaves the previous generation
    /// serving (the orphaned entry is superseded by the next publish),
    /// and a crash *during* either write leaves only a `*.tmp` that the
    /// next recovery scan quarantines.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`]; on error no partial entry file remains
    /// visible under the entry name (at worst a stray `*.tmp`, which
    /// the next recovery scan quarantines).
    pub fn publish(&mut self, model: &ProclusModel) -> Result<u64, RegistryError> {
        let generation = self.valid.last().map_or(1, |g| g + 1);
        let path = self.entry_path(generation);
        write_atomic(&path, &encode_model(model))?;
        write_atomic(
            &self.dir.join(CURRENT_FILE),
            format!("{generation}\n").as_bytes(),
        )?;
        self.valid.push(generation);
        self.current = Some(generation);
        Ok(generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proclus_math::Matrix;

    fn toy_model(shift: f64) -> ProclusModel {
        let m = Matrix::from_rows(
            &[
                [0.0 + shift, 0.0, 1.0],
                [10.0, 10.0 + shift, 2.0],
                [0.5, 0.0, 3.0],
                [10.0, 9.0, 4.0],
                [50.0, 50.0, 5.0],
            ],
            3,
        );
        ProclusModel::from_parts(
            &m,
            vec![0, 1],
            vec![vec![0, 1], vec![1, 2]],
            vec![Some(0), Some(1), Some(0), Some(1), None],
            vec![10.0, 12.5],
            (0.5, 0.6),
            7,
            3,
            DistanceKind::Manhattan,
        )
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("proclus-registry-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn codec_roundtrips_and_is_deterministic() {
        let m = toy_model(0.0);
        let bytes = encode_model(&m);
        assert_eq!(bytes, encode_model(&m), "encoding must be deterministic");
        let back = decode_model(&bytes).unwrap();
        assert_eq!(back.assignment(), m.assignment());
        assert_eq!(back.outliers(), m.outliers());
        assert_eq!(back.objective(), m.objective());
        assert_eq!(back.iterative_objective(), m.iterative_objective());
        assert_eq!(back.rounds(), m.rounds());
        assert_eq!(back.improvements(), m.improvements());
        assert_eq!(back.distance(), m.distance());
        for (a, b) in back.clusters().iter().zip(m.clusters()) {
            assert_eq!(a, b);
        }
        // Re-encoding the decoded model reproduces the bytes.
        assert_eq!(encode_model(&back), bytes);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode_model(&toy_model(0.0));
        for cut in [0, 1, 4, 5, 13, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_model(&bytes[..cut]).is_err(),
                "truncation at {cut} must not parse"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let bytes = encode_model(&toy_model(0.0));
        for &pos in &[0usize, 4, 6, 14, 46, bytes.len() - 9, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(
                decode_model(&bad).is_err(),
                "bit flip at byte {pos} must not parse"
            );
        }
    }

    #[test]
    fn implausible_header_fails_before_allocating() {
        let mut bytes = encode_model(&toy_model(0.0));
        // Claim 2^30 points; re-checksum so the guard (not the
        // checksum) is what rejects it.
        bytes[14..22].copy_from_slice(&(1u64 << 30).to_le_bytes());
        let len = bytes.len();
        let sum = fnv1a64(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        let err = decode_model(&bytes).unwrap_err();
        assert!(err.reason.contains("implausible"), "{err}");
    }

    #[test]
    fn publish_load_and_current_pointer() {
        let dir = tmp_dir("publish");
        let (mut reg, report) = ModelRegistry::open(&dir).unwrap();
        assert!(report.is_clean());
        assert_eq!(reg.current(), None);
        assert!(reg.load_current().unwrap().is_none());

        let m1 = toy_model(0.0);
        let g1 = reg.publish(&m1).unwrap();
        assert_eq!(g1, 1);
        let m2 = toy_model(1.0);
        let g2 = reg.publish(&m2).unwrap();
        assert_eq!(g2, 2);
        assert_eq!(reg.generations(), &[1, 2]);
        assert_eq!(reg.current(), Some(2));

        // Entry bytes are exactly encode_model (generation lives only
        // in the filename), so offline bytes compare equal.
        let on_disk = fs::read(reg.entry_path(2)).unwrap();
        assert_eq!(on_disk, encode_model(&m2));

        // Reopen: clean scan, same state.
        let (reg2, report2) = ModelRegistry::open(&dir).unwrap();
        assert!(report2.is_clean(), "{report2:?}");
        assert_eq!(report2.valid, vec![1, 2]);
        assert_eq!(reg2.current(), Some(2));
        let (g, loaded) = reg2.load_current().unwrap().unwrap();
        assert_eq!(g, 2);
        assert_eq!(loaded.assignment(), m2.assignment());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_quarantines_corrupt_and_partial_entries() {
        let dir = tmp_dir("recovery");
        let (mut reg, _) = ModelRegistry::open(&dir).unwrap();
        reg.publish(&toy_model(0.0)).unwrap();
        reg.publish(&toy_model(1.0)).unwrap();

        // Corrupt generation 2 (the one CURRENT names), leave a partial
        // write of a would-be generation 3, and a stray tmp file.
        let e2 = reg.entry_path(2);
        let mut bytes = fs::read(&e2).unwrap();
        bytes[20] ^= 0xFF;
        fs::write(&e2, &bytes).unwrap();
        let full = encode_model(&toy_model(2.0));
        fs::write(dir.join("gen-000003.prcm"), &full[..full.len() / 2]).unwrap();
        fs::write(dir.join("gen-000004.prcm.tmp"), b"partial").unwrap();

        let (reg2, report) = ModelRegistry::open(&dir).unwrap();
        assert_eq!(report.valid, vec![1]);
        assert_eq!(report.quarantined.len(), 3, "{report:?}");
        assert!(report.current_repaired);
        assert_eq!(reg2.current(), Some(1));
        // Quarantined files are renamed, not deleted, and no longer
        // parse as entries on the next scan.
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(names.iter().any(|n| n == "gen-000002.prcm.quarantined"));
        assert!(names.iter().any(|n| n == "gen-000003.prcm.quarantined"));
        assert!(names.iter().any(|n| n == "gen-000004.prcm.tmp.quarantined"));
        let (reg3, report3) = ModelRegistry::open(&dir).unwrap();
        assert!(report3.is_clean(), "{report3:?}");
        assert_eq!(reg3.current(), Some(1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_entry_and_current_keeps_previous_model_serving() {
        let dir = tmp_dir("midcrash");
        let (mut reg, _) = ModelRegistry::open(&dir).unwrap();
        reg.publish(&toy_model(0.0)).unwrap();
        // Simulate: generation 2's entry landed durably but the process
        // died before the CURRENT pointer flipped. The flip is the
        // commit point, so generation 1 must keep serving.
        fs::write(dir.join("gen-000002.prcm"), encode_model(&toy_model(1.0))).unwrap();
        let (mut reg2, report) = ModelRegistry::open(&dir).unwrap();
        assert!(!report.current_repaired);
        assert_eq!(reg2.current(), Some(1));
        // The next publish supersedes the orphaned entry.
        let g = reg2.publish(&toy_model(2.0)).unwrap();
        assert_eq!(g, 3);
        assert_eq!(reg2.current(), Some(3));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_with_missing_current_repairs_to_highest_valid() {
        let dir = tmp_dir("nocurrent");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("gen-000001.prcm"), encode_model(&toy_model(0.0))).unwrap();
        fs::write(dir.join("gen-000002.prcm"), encode_model(&toy_model(1.0))).unwrap();
        let (reg, report) = ModelRegistry::open(&dir).unwrap();
        assert!(report.current_repaired);
        assert_eq!(reg.current(), Some(2));
        assert_eq!(
            fs::read_to_string(dir.join(CURRENT_FILE)).unwrap().trim(),
            "2"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dangling_current_with_no_entries_is_removed() {
        let dir = tmp_dir("dangling");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(CURRENT_FILE), "7\n").unwrap();
        let (reg, report) = ModelRegistry::open(&dir).unwrap();
        assert!(report.current_repaired);
        assert_eq!(reg.current(), None);
        assert!(!dir.join(CURRENT_FILE).exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entry_deleted_between_pointer_read_and_open_is_a_typed_error() {
        // The TOCTOU regression: CURRENT names generation 1, but the
        // entry vanishes before the reader opens it (a racing writer
        // pruned it without moving the pointer). The load must surface
        // a typed I/O error — not panic, not loop.
        let dir = tmp_dir("toctou-dangling");
        let (mut reg, _) = ModelRegistry::open(&dir).unwrap();
        reg.publish(&toy_model(0.0)).unwrap();
        fs::remove_file(reg.entry_path(1)).unwrap();
        let err = reg.load_current_fresh().unwrap_err();
        match &err {
            RegistryError::Io { path, source } => {
                assert_eq!(source.kind(), io::ErrorKind::NotFound);
                assert!(path.ends_with("gen-000001.prcm"), "{err}");
            }
            other => panic!("expected Io, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pointer_moved_during_load_is_chased_to_the_new_generation() {
        // The recoverable half of the race: the entry named by the
        // first pointer read is gone, but CURRENT has moved on to a
        // live generation — the reader must chase and succeed.
        let dir = tmp_dir("toctou-chase");
        let (mut reg, _) = ModelRegistry::open(&dir).unwrap();
        reg.publish(&toy_model(0.0)).unwrap();
        let (stale_reg, _) = ModelRegistry::open(&dir).unwrap();
        reg.publish(&toy_model(1.0)).unwrap();
        fs::remove_file(reg.entry_path(1)).unwrap();
        // stale_reg's cached view still says generation 1; the fresh
        // path reads the moved pointer from disk and serves gen 2.
        let (g, model) = stale_reg.load_current_fresh().unwrap().unwrap();
        assert_eq!(g, 2);
        assert_eq!(model.assignment(), toy_model(1.0).assignment());
        // The cached path against the deleted entry stays a typed
        // error rather than a panic.
        assert!(matches!(
            stale_reg.load_current(),
            Err(RegistryError::Io { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unparsable_current_on_disk_is_corrupt_not_panic() {
        let dir = tmp_dir("toctou-garbage");
        let (mut reg, _) = ModelRegistry::open(&dir).unwrap();
        reg.publish(&toy_model(0.0)).unwrap();
        fs::write(dir.join(CURRENT_FILE), "not-a-number\n").unwrap();
        assert!(matches!(
            reg.current_generation_on_disk(),
            Err(RegistryError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_load_sees_cross_handle_promotions() {
        let dir = tmp_dir("toctou-fresh");
        let (mut writer, _) = ModelRegistry::open(&dir).unwrap();
        writer.publish(&toy_model(0.0)).unwrap();
        let (reader, _) = ModelRegistry::open(&dir).unwrap();
        assert_eq!(reader.current(), Some(1));
        writer.publish(&toy_model(1.0)).unwrap();
        // Cached view is stale; the fresh path sees the promotion.
        assert_eq!(reader.current(), Some(1));
        assert_eq!(reader.current_generation_on_disk().unwrap(), Some(2));
        let (g, _) = reader.load_current_fresh().unwrap().unwrap();
        assert_eq!(g, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entry_names_roundtrip() {
        assert_eq!(entry_name(7), "gen-000007.prcm");
        assert_eq!(parse_entry_name("gen-000007.prcm"), Some(7));
        assert_eq!(parse_entry_name("gen-1234567.prcm"), Some(1_234_567));
        assert_eq!(parse_entry_name("gen-.prcm"), None);
        assert_eq!(parse_entry_name("gen-12.prcm.quarantined"), None);
        assert_eq!(parse_entry_name("CURRENT"), None);
    }
}
