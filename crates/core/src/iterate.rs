//! The iterative (hill climbing) phase and the overall driver
//! (Figure 2's `Algorithm PROCLUS`).
//!
//! The search walks a graph whose vertices are k-subsets of the
//! candidate medoid set `M`: each round evaluates the current vertex
//! (localities → dimensions → assignment → objective) and, when it does
//! not improve on the best vertex seen, retries from the best vertex
//! with its *bad* medoids swapped for random unused candidates. The walk
//! stops after `max_stale_rounds` consecutive non-improving rounds (or
//! the absolute `max_rounds` cap), then hands over to the refinement
//! phase.

use crate::assign::group_members;
use crate::cache::RoundCache;
use crate::dims::{chosen_scores, find_dimensions_from_averages};
use crate::error::ProclusError;
use crate::evaluate::{bad_medoids, evaluate_clusters};
use crate::index::NeighborIndex;
use crate::init::candidate_medoids;
use crate::locality::medoid_deltas;
use crate::model::{Degradation, FitDiagnostics, ProclusModel};
use crate::params::Proclus;
use crate::pool::{with_pool_opts, Pool, PoolOptions};
use crate::refine::refine_with_pool;
use proclus_math::Matrix;
use proclus_obs::{timed, Event, NoopRecorder, Phase, Recorder};
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Execute the full three-phase PROCLUS algorithm: `restarts`
/// independent climbs, keeping the run with the lowest iterative
/// objective.
///
/// The worker pool (see [`crate::pool`]) is created once here and
/// shared by every restart, round, and the refinement phase — no
/// per-round thread spawning.
pub fn run(params: &Proclus, points: &Matrix) -> Result<ProclusModel, ProclusError> {
    run_traced(params, points, &NoopRecorder)
}

/// [`run`] with a [`Recorder`] observing the fit: one `fit_start`, a
/// `restart_start` per climb, a `round` event per hill-climbing round,
/// `swap`/`refine` decisions, a closing `fit_end`, plus phase spans and
/// pool counters/gauges. With a disabled recorder (the default
/// [`NoopRecorder`]) no event payloads are built and no clocks are
/// read — the hot loops check `enabled()` once per emission site.
///
/// Event determinism: everything emitted here is a pure function of
/// `(params, points, seed)` — in particular it does **not** depend on
/// `params.threads` (pool dispatch/block counts are identical in serial
/// and pooled mode). Timings and queue depths go only to the
/// span/gauge channel.
pub fn run_traced(
    params: &Proclus,
    points: &Matrix,
    rec: &dyn Recorder,
) -> Result<ProclusModel, ProclusError> {
    params.validate(points.rows(), points.cols())?;
    let mut diag = preflight(params, points)?;
    let restarts = params.restarts.max(1);
    if rec.enabled() {
        rec.event(&Event::FitStart {
            algorithm: "proclus",
            n: points.rows(),
            d: points.cols(),
            k: params.k,
            l: params.l,
            seed: params.rng_seed,
            restarts,
        });
    }
    let opts = PoolOptions {
        columnar: true,
        fast_math: params.fast_math,
    };
    let result = with_pool_opts(points, params.distance, params.threads, opts, |pool| {
        install_index(params, points, pool, rec);
        // One cache for the whole fit: its entries are value-keyed, so
        // state surviving a restart is either bit-identical (and
        // served) or mismatched (and recomputed) — never stale.
        let mut cache = RoundCache::new(params.round_cache, params.k);
        let mut best: Option<ProclusModel> = None;
        let mut last_error: Option<ProclusError> = None;
        for r in 0..restarts {
            let seed = params
                .rng_seed
                .wrapping_add((r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            diag.restarts += 1;
            if rec.enabled() {
                rec.event(&Event::RestartStart { restart: r, seed });
            }
            // A collapsed restart is a degradation, not a failure, as
            // long as some other restart produces a usable model: record
            // it and keep climbing from the remaining seeds.
            match run_once(
                params, points, seed, None, r, pool, &mut cache, &mut diag, rec,
            ) {
                Ok(model) => {
                    if best
                        .as_ref()
                        .is_none_or(|b| model.iterative_objective() < b.iterative_objective())
                    {
                        best = Some(model);
                    }
                }
                Err(e) => {
                    diag.failed_restarts += 1;
                    diag.degradations.push(Degradation::RestartFailed {
                        restart: r,
                        reason: e.to_string(),
                    });
                    last_error = Some(e);
                }
            }
        }
        record_pool_measurements(rec, pool);
        record_cache_measurements(rec, &cache);
        record_index_measurements(rec, pool);
        record_layout_measurements(rec, pool);
        record_fastmath_measurements(rec, pool);
        match best {
            Some(model) => Ok(model.with_diagnostics(diag.clone())),
            // Every restart collapsed. One restart: surface its error
            // directly; several: summarize as non-convergence.
            None => match last_error {
                Some(e) if restarts == 1 => Err(e),
                _ => Err(ProclusError::NonConvergence { restarts }),
            },
        }
    });
    record_fit_end(rec, &result);
    result
}

/// Build and install the per-fit neighbor index when enabled. One
/// O(N·d·R) build serves every restart, round, and the refinement (the
/// sketches depend only on the data, never on search state). The build
/// time goes to the `Phase::Index` span; the index itself changes no
/// result bit, so nothing here touches the event stream.
fn install_index(params: &Proclus, points: &Matrix, pool: &mut Pool<'_>, rec: &dyn Recorder) {
    if !params.neighbor_index {
        return;
    }
    let index = timed(rec, Phase::Index, || {
        std::sync::Arc::new(NeighborIndex::build(points, params.distance))
    });
    pool.set_index(Some(index));
}

/// Index-pruning effectiveness → `index.*` counters (manifest channel
/// only; emitted only when the index is enabled, mirroring the cache
/// counters, so an unindexed run's manifest stays silent).
fn record_index_measurements(rec: &dyn Recorder, pool: &Pool<'_>) {
    if !rec.enabled() || !pool.index_enabled() {
        return;
    }
    let stats = pool.prune_stats();
    rec.counter("index.range_sketch_pruned", stats.range_sketch_pruned);
    rec.counter("index.range_triangle_pruned", stats.range_triangle_pruned);
    rec.counter("index.range_prefix_pruned", stats.range_prefix_pruned);
    rec.counter("index.range_verified", stats.range_verified);
    rec.counter("index.nearest_pruned", stats.nearest_pruned);
    rec.counter("index.nearest_verified", stats.nearest_verified);
}

/// Columnar-layout coverage → `layout.*` counters (manifest channel
/// only; emitted only when the layout is built, so a `columnar: false`
/// pool's manifest stays silent). `columnar_blocks` counts block
/// dispatches served by a dimension-major tile, `rowmajor_blocks` the
/// dispatches that fell back to the row-major kernels.
fn record_layout_measurements(rec: &dyn Recorder, pool: &Pool<'_>) {
    if !rec.enabled() || !pool.layout_enabled() {
        return;
    }
    let (columnar, rowmajor) = pool.layout_block_counts();
    rec.counter("layout.columnar_blocks", columnar);
    rec.counter("layout.rowmajor_blocks", rowmajor);
}

/// `f32` fast-path effectiveness → `fastmath.*` counters (manifest
/// channel only; emitted only under `--fast-math`). The exactness gate
/// guarantees `screened == excluded + verified` and that exclusions
/// never change a winner, so these measure work saved, not accuracy
/// lost.
fn record_fastmath_measurements(rec: &dyn Recorder, pool: &Pool<'_>) {
    if !rec.enabled() || !pool.fast_math_enabled() {
        return;
    }
    let stats = pool.fast_math_stats();
    rec.counter("fastmath.screened", stats.screened);
    rec.counter("fastmath.excluded", stats.excluded);
    rec.counter("fastmath.verified", stats.verified);
}

/// Pool work totals → counters, scheduling-dependent facts → gauges.
///
/// `pool.dispatches`/`pool.blocks` are the *logical* (semantic-pass)
/// totals — identical with the round cache on or off. The `physical_*`
/// pair counts fan-outs that actually ran; the gap between the two is
/// the work the cache saved.
fn record_pool_measurements(rec: &dyn Recorder, pool: &Pool<'_>) {
    if !rec.enabled() {
        return;
    }
    let stats = pool.stats();
    rec.counter("pool.dispatches", stats.dispatches);
    rec.counter("pool.blocks", stats.blocks);
    let physical = pool.physical_stats();
    rec.counter("pool.physical_dispatches", physical.dispatches);
    rec.counter("pool.physical_blocks", physical.blocks);
    rec.gauge("pool.workers", pool.workers() as f64);
    rec.gauge("pool.queue_high_water", pool.queue_high_water() as f64);
}

/// Round-cache effectiveness → `cache.*` counters (manifest channel
/// only; emitted only when the cache is enabled so an uncached run's
/// manifest does not advertise zero-valued cache counters).
fn record_cache_measurements(rec: &dyn Recorder, cache: &RoundCache) {
    if !rec.enabled() || !cache.is_enabled() {
        return;
    }
    let stats = cache.stats();
    rec.counter("cache.fused_slot_hits", stats.fused_slot_hits);
    rec.counter("cache.fused_slot_recomputes", stats.fused_slot_recomputes);
    rec.counter("cache.column_hits", stats.column_hits);
    rec.counter("cache.column_recomputes", stats.column_recomputes);
    rec.counter("cache.cluster_row_hits", stats.cluster_row_hits);
    rec.counter("cache.cluster_row_recomputes", stats.cluster_row_recomputes);
}

/// Emit `fit_end` for a successful fit.
fn record_fit_end(rec: &dyn Recorder, result: &Result<ProclusModel, ProclusError>) {
    if !rec.enabled() {
        return;
    }
    if let Ok(model) = result {
        rec.event(&Event::FitEnd {
            rounds: model.rounds(),
            improvements: model.improvements(),
            objective: model.objective(),
            iterative_objective: model.iterative_objective(),
            outliers: model.outliers().len(),
        });
    }
}

/// Reject data that cannot support any fit (fewer fully-finite rows
/// than medoids needed) and seed the diagnostics with the count of
/// non-finite rows the pipeline will work around.
fn preflight(params: &Proclus, points: &Matrix) -> Result<FitDiagnostics, ProclusError> {
    let n = points.rows();
    let finite = (0..n)
        .filter(|&i| points.row(i).iter().all(|v| v.is_finite()))
        .count();
    if finite < params.k {
        return Err(ProclusError::DegenerateData {
            reason: format!(
                "only {finite} of {n} rows are fully finite, but k = {} medoids are needed",
                params.k
            ),
        });
    }
    let mut diag = FitDiagnostics::default();
    if finite < n {
        diag.degradations
            .push(Degradation::NonFiniteRowsExcluded { count: n - finite });
    }
    Ok(diag)
}

/// Like [`run`] but hill climbing starts from a caller-supplied medoid
/// set instead of the sampled/greedy initialization (single climb, no
/// restarts — the start is fixed). The candidate pool for bad-medoid
/// replacement is still built by the configured initialization, with
/// the initial medoids added.
///
/// # Errors
///
/// Rejects out-of-range or duplicate medoids, a medoid count different
/// from `k`, and the same shape errors as [`run`].
pub fn run_from_medoids(
    params: &Proclus,
    points: &Matrix,
    initial: &[usize],
) -> Result<ProclusModel, ProclusError> {
    run_from_medoids_traced(params, points, initial, &NoopRecorder)
}

/// [`run_from_medoids`] with a [`Recorder`] observing the single climb
/// (same event contract as [`run_traced`]).
///
/// # Errors
///
/// Same as [`run_from_medoids`].
pub fn run_from_medoids_traced(
    params: &Proclus,
    points: &Matrix,
    initial: &[usize],
    rec: &dyn Recorder,
) -> Result<ProclusModel, ProclusError> {
    params.validate(points.rows(), points.cols())?;
    if initial.len() != params.k {
        return Err(ProclusError::InvalidParameters(format!(
            "expected {} initial medoids, got {}",
            params.k,
            initial.len()
        )));
    }
    let mut sorted = initial.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != initial.len() {
        return Err(ProclusError::InvalidParameters(
            "initial medoids must be distinct".into(),
        ));
    }
    if let Some(&bad) = initial.iter().find(|&&m| m >= points.rows()) {
        return Err(ProclusError::InvalidParameters(format!(
            "initial medoid {bad} out of range (N = {})",
            points.rows()
        )));
    }
    let mut diag = preflight(params, points)?;
    if rec.enabled() {
        rec.event(&Event::FitStart {
            algorithm: "proclus",
            n: points.rows(),
            d: points.cols(),
            k: params.k,
            l: params.l,
            seed: params.rng_seed,
            restarts: 1,
        });
        rec.event(&Event::RestartStart {
            restart: 0,
            seed: params.rng_seed,
        });
    }
    let opts = PoolOptions {
        columnar: true,
        fast_math: params.fast_math,
    };
    let result = with_pool_opts(points, params.distance, params.threads, opts, |pool| {
        install_index(params, points, pool, rec);
        diag.restarts = 1;
        let mut cache = RoundCache::new(params.round_cache, params.k);
        let model = run_once(
            params,
            points,
            params.rng_seed,
            Some(initial),
            0,
            pool,
            &mut cache,
            &mut diag,
            rec,
        )?;
        record_pool_measurements(rec, pool);
        record_cache_measurements(rec, &cache);
        record_index_measurements(rec, pool);
        record_layout_measurements(rec, pool);
        record_fastmath_measurements(rec, pool);
        Ok(model.with_diagnostics(diag.clone()))
    });
    record_fit_end(rec, &result);
    result
}

/// One initialization + hill climb + refinement, from `seed`.
/// `forced_start` pins the first vertex of the climb. All O(N·k·d)
/// passes run through `pool`, routed via `cache` so rounds that share
/// per-medoid state with earlier rounds recompute only what a swap
/// touched; `rec` observes every round of the climb (`restart` tags
/// the events with the climb's index).
#[allow(clippy::too_many_arguments)]
fn run_once(
    params: &Proclus,
    points: &Matrix,
    seed: u64,
    forced_start: Option<&[usize]>,
    restart: usize,
    pool: &mut Pool<'_>,
    cache: &mut RoundCache,
    diag: &mut FitDiagnostics,
    rec: &dyn Recorder,
) -> Result<ProclusModel, ProclusError> {
    let n = points.rows();
    let k = params.k;
    let total_dims = params.total_dimensions();
    let metric = params.distance;
    let mut rng = StdRng::seed_from_u64(seed);

    // ---- Phase 1: initialization --------------------------------------
    let mut candidates = timed(rec, Phase::Init, || {
        candidate_medoids(params, points, &mut rng)
    });
    debug_assert!(candidates.len() >= k);

    // Starting vertex: forced, or a random k-subset of the candidates.
    let mut current: Vec<usize> = match forced_start {
        Some(m) => {
            for &medoid in m {
                if !candidates.contains(&medoid) {
                    candidates.push(medoid);
                }
            }
            m.to_vec()
        }
        None => sample(&mut rng, candidates.len(), k)
            .into_iter()
            .map(|i| candidates[i])
            .collect(),
    };

    // ---- Phase 2: hill climbing ---------------------------------------
    let mut best = current.clone();
    let mut best_objective = f64::INFINITY;
    let mut best_clusters: Vec<Vec<usize>> = Vec::new();
    let mut rounds = 0usize;
    let mut improvements = 0usize;
    let mut stale = 0usize;

    loop {
        rounds += 1;
        // Fused pass: locality membership and the per-dimension average
        // distances X over the localities come from a single O(N·k·d)
        // sweep (the localities themselves are only needed for the X
        // reference sets, which the kernel folds in as it tests them).
        let (locs, x) = timed(rec, Phase::Locality, || {
            let deltas = medoid_deltas(points, &current, metric);
            cache.fused_round(pool, &current, &deltas)
        });
        let mut dims = timed(rec, Phase::Dims, || {
            find_dimensions_from_averages(&x, total_dims, params.standardize_dimensions)
        });
        // The score of each chosen dimension, for the round event. Kept
        // in sync with whichever averages produced the final `dims`
        // (locality X here, cluster X after an inner refinement).
        let mut dim_scores = if rec.enabled() {
            chosen_scores(&x, &dims, params.standardize_dimensions)
        } else {
            Vec::new()
        };
        // Sharpen the dimension estimates against the assigned clusters
        // (see `Proclus::inner_refinements`): localities blur together
        // in high dimensions, clusters do not. When a recomputation
        // follows, the assignment pass also accumulates the
        // cluster-based X it will need (one sweep instead of two).
        let mut cluster_x: Option<Vec<Vec<f64>>> = None;
        let mut flat = if params.inner_refinements > 0 {
            let (f, cx) = timed(rec, Phase::Assign, || cache.assign_x(pool, &current, &dims));
            cluster_x = Some(cx);
            f
        } else {
            timed(rec, Phase::Assign, || cache.assign(pool, &current, &dims))
        };
        for r in 0..params.inner_refinements {
            let Some(cx) = cluster_x.take() else {
                break;
            };
            dims = timed(rec, Phase::Dims, || {
                find_dimensions_from_averages(&cx, total_dims, params.standardize_dimensions)
            });
            if rec.enabled() {
                dim_scores = chosen_scores(&cx, &dims, params.standardize_dimensions);
            }
            if r + 1 < params.inner_refinements {
                let (f, next_cx) =
                    timed(rec, Phase::Assign, || cache.assign_x(pool, &current, &dims));
                cluster_x = Some(next_cx);
                flat = f;
            } else {
                flat = timed(rec, Phase::Assign, || cache.assign(pool, &current, &dims));
            }
        }
        let clusters = {
            let opt: Vec<Option<usize>> = flat.iter().map(|&a| Some(a)).collect();
            group_members(&opt, k)
        };
        let objective = timed(rec, Phase::Evaluate, || {
            evaluate_clusters(points, &clusters, &dims, n)
        });

        let improved = objective < best_objective;
        let cluster_sizes_snapshot: Vec<usize> = if rec.enabled() {
            clusters.iter().map(Vec::len).collect()
        } else {
            Vec::new()
        };
        if improved {
            best_objective = objective;
            best = current.clone();
            best_clusters = clusters;
            improvements += 1;
            stale = 0;
        } else {
            stale += 1;
        }

        if rec.enabled() {
            // How many fused slots this round actually recomputed: the
            // per-round cache-effectiveness gauge (measurement channel
            // only — `round` events stay cache-independent).
            rec.gauge(
                "cache.medoids_recomputed",
                cache.take_round_recomputed() as f64,
            );
            let delta = pool.take_round_delta();
            rec.event(&Event::Round {
                restart,
                round: rounds,
                locality_sizes: locs.iter().map(Vec::len).collect(),
                dims: dims.clone(),
                dim_scores: std::mem::take(&mut dim_scores),
                cluster_sizes: cluster_sizes_snapshot,
                objective,
                best_objective,
                improved,
                pool_dispatches: delta.dispatches,
                pool_blocks: delta.blocks,
            });
        }

        if stale >= params.max_stale_rounds || rounds >= params.max_rounds {
            break;
        }

        // No round has improved on infinity — the objective is NaN on
        // every vertex (degenerate data, e.g. NaN coordinates). There
        // is no best clustering to mine for bad medoids; stop climbing
        // and let refinement classify what it can.
        if best_clusters.is_empty() {
            if !diag
                .degradations
                .contains(&Degradation::ObjectiveNeverImproved)
            {
                diag.degradations.push(Degradation::ObjectiveNeverImproved);
            }
            break;
        }

        // Replace the bad medoids of the best vertex with random unused
        // candidates to form the next vertex.
        let sizes: Vec<usize> = best_clusters.iter().map(Vec::len).collect();
        let bad = bad_medoids(&sizes, n, params.min_deviation);
        match replace_bad(&best, &bad, &candidates, &mut rng) {
            Some(next) => {
                diag.bad_medoid_swaps += bad.len();
                if rec.enabled() {
                    rec.event(&Event::Swap {
                        restart,
                        round: rounds,
                        bad: bad.clone(),
                        cluster_sizes: sizes.clone(),
                        threshold: (n as f64 / k.max(1) as f64) * params.min_deviation,
                    });
                }
                current = next;
            }
            // Candidate pool exhausted (tiny datasets): nothing new to
            // try, so stop climbing with the best vertex seen.
            None => {
                diag.degradations
                    .push(Degradation::CandidatePoolExhausted { round: rounds });
                break;
            }
        }
    }
    diag.total_rounds += rounds;

    // ---- Phase 3: refinement -------------------------------------------
    let refined = timed(rec, Phase::Refine, || {
        refine_with_pool(
            pool,
            &best,
            &best_clusters,
            total_dims,
            params.standardize_dimensions,
        )
    });
    let final_clusters = group_members(&refined.assignment, k);
    let final_objective = evaluate_clusters(points, &final_clusters, &refined.dims, n);

    // Total collapse: not a single point stayed assigned (every cluster
    // empty). The model would be vacuous — surface it as a typed error
    // so the restart loop can try other seeds or report it.
    if n > 0 && refined.assignment.iter().all(Option::is_none) {
        return Err(ProclusError::ClusterCollapse { rounds });
    }

    if rec.enabled() {
        rec.event(&Event::Refine {
            restart,
            medoids: best.clone(),
            dims: refined.dims.clone(),
            spheres: refined.spheres.clone(),
            outliers: refined.assignment.iter().filter(|a| a.is_none()).count(),
            objective: final_objective,
        });
    }

    Ok(ProclusModel::from_parts(
        points,
        best,
        refined.dims,
        refined.assignment,
        refined.spheres,
        (final_objective, best_objective),
        rounds,
        improvements,
        metric,
    ))
}

/// Build the next vertex: `base` with the medoids at positions `bad`
/// replaced by random candidates not already in the vertex. Returns
/// `None` when there are not enough unused candidates.
fn replace_bad(
    base: &[usize],
    bad: &[usize],
    candidates: &[usize],
    rng: &mut StdRng,
) -> Option<Vec<usize>> {
    let mut next = base.to_vec();
    let mut unused: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|c| !base.contains(c))
        .collect();
    if unused.len() < bad.len() {
        return None;
    }
    unused.shuffle(rng);
    for (slot, fresh) in bad.iter().zip(unused) {
        next[*slot] = fresh;
    }
    Some(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proclus_data::SyntheticSpec;

    #[test]
    fn replace_bad_swaps_only_bad_positions() {
        let mut rng = StdRng::seed_from_u64(4);
        let base = vec![10, 20, 30];
        let candidates = vec![10, 20, 30, 40, 50, 60];
        let next = replace_bad(&base, &[1], &candidates, &mut rng).unwrap();
        assert_eq!(next[0], 10);
        assert_eq!(next[2], 30);
        assert!([40, 50, 60].contains(&next[1]));
    }

    #[test]
    fn replace_bad_exhausted_pool_returns_none() {
        let mut rng = StdRng::seed_from_u64(4);
        let base = vec![1, 2];
        assert_eq!(replace_bad(&base, &[0], &[1, 2], &mut rng), None);
    }

    #[test]
    fn replace_bad_produces_distinct_medoids() {
        let mut rng = StdRng::seed_from_u64(4);
        let base = vec![1, 2, 3];
        let candidates: Vec<usize> = (1..=10).collect();
        for _ in 0..50 {
            let next = replace_bad(&base, &[0, 2], &candidates, &mut rng).unwrap();
            let mut sorted = next.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "{next:?}");
        }
    }

    /// Regression: a NaN coordinate makes every round's objective NaN,
    /// so no round ever "improves" and `best_clusters` stays empty —
    /// the bad-medoid step used to hit `bad_medoids`'s `k > 0`
    /// assertion. The climb now stops gracefully and refinement
    /// classifies the finite points.
    #[test]
    fn fit_survives_nan_coordinates() {
        let rows: Vec<[f64; 2]> = vec![
            [0.0, 0.0],
            [f64::NAN, 1.0],
            [1.0, 0.5],
            [0.5, 0.2],
            [10.0, 10.0],
            [10.5, 10.2],
            [9.9, 10.1],
            [10.2, 9.8],
        ];
        let m = Matrix::from_rows(&rows, 2);
        for seed in 0..6 {
            let model = Proclus::new(2, 2.0)
                .seed(seed)
                .fit(&m)
                .expect("valid parameters");
            assert_eq!(model.clusters().len(), 2, "seed {seed}");
            assert_eq!(model.assignment().len(), 8, "seed {seed}");
        }
    }

    /// A NaN-riddled dataset with too few finite rows is rejected with
    /// a typed error, not a panic deep in the pipeline.
    #[test]
    fn fit_rejects_degenerate_data() {
        let m = Matrix::from_rows(&[[f64::NAN, f64::NAN]; 10], 2);
        let err = Proclus::new(2, 2.0).fit(&m).unwrap_err();
        assert!(matches!(err, ProclusError::DegenerateData { .. }), "{err}");
        // One finite row, k = 2: still not enough.
        let mut rows = vec![[f64::NAN, 0.0]; 5];
        rows[0] = [1.0, 1.0];
        let err = Proclus::new(2, 2.0)
            .fit(&Matrix::from_rows(&rows, 2))
            .unwrap_err();
        assert!(matches!(err, ProclusError::DegenerateData { .. }), "{err}");
    }

    /// Non-finite rows are excluded from medoid candidacy and the
    /// model's diagnostics say so.
    #[test]
    fn fit_records_non_finite_row_degradation() {
        let mut rows: Vec<[f64; 2]> = (0..40)
            .map(|i| [(i % 7) as f64, (i / 7) as f64 * 10.0])
            .collect();
        rows[5] = [f64::NAN, 3.0];
        rows[21] = [f64::INFINITY, 1.0];
        let m = Matrix::from_rows(&rows, 2);
        let model = Proclus::new(2, 2.0).seed(1).fit(&m).unwrap();
        assert!(model
            .diagnostics()
            .degradations
            .contains(&crate::model::Degradation::NonFiniteRowsExcluded { count: 2 }));
        // Neither degenerate row can be a medoid.
        for c in model.clusters() {
            assert!(c.medoid.iter().all(|v| v.is_finite()));
        }
    }

    /// Diagnostics reflect the work the restart loop actually did.
    #[test]
    fn fit_populates_diagnostics() {
        let data = SyntheticSpec::new(500, 6, 2, 3.0).seed(13).generate();
        let model = Proclus::new(2, 3.0).seed(4).fit(&data.points).unwrap();
        let d = model.diagnostics();
        assert_eq!(d.restarts, 5, "default restart count");
        assert_eq!(d.failed_restarts, 0);
        assert!(d.total_rounds >= model.rounds());
        assert!(d.total_rounds >= 5, "at least one round per restart");
    }

    /// Tiny dataset: the candidate pool runs dry, the climb stops with
    /// best-so-far, and the degradation is recorded — no panic, valid
    /// model.
    #[test]
    fn fit_records_pool_exhaustion_on_tiny_data() {
        let rows: Vec<[f64; 2]> = (0..4).map(|i| [i as f64 * 10.0, 0.0]).collect();
        let m = Matrix::from_rows(&rows, 2);
        let model = Proclus::new(4, 2.0).seed(2).fit(&m).unwrap();
        assert!(model
            .diagnostics()
            .degradations
            .iter()
            .any(|d| matches!(d, crate::model::Degradation::CandidatePoolExhausted { .. })));
        assert_eq!(model.assignment().len(), 4);
    }

    /// The traced fit is bit-identical to the untraced fit, and the
    /// event stream accounts for every round the diagnostics report.
    #[test]
    fn traced_fit_matches_untraced_and_emits_events() {
        use proclus_obs::{Event, Phase, RingRecorder};
        let data = SyntheticSpec::new(600, 8, 2, 3.0).seed(3).generate();
        let params = Proclus::new(2, 3.0).seed(5);
        let rec = RingRecorder::new(8192);
        let traced = params.fit_traced(&data.points, &rec).unwrap();
        let plain = params.fit(&data.points).unwrap();
        assert_eq!(traced.assignment(), plain.assignment());
        assert_eq!(traced.objective(), plain.objective());

        let events = rec.events();
        assert_eq!(rec.dropped(), 0);
        assert!(matches!(events.first(), Some(Event::FitStart { .. })));
        assert!(matches!(events.last(), Some(Event::FitEnd { .. })));
        let restarts = events
            .iter()
            .filter(|e| matches!(e, Event::RestartStart { .. }))
            .count();
        assert_eq!(restarts, traced.diagnostics().restarts);
        let rounds = events
            .iter()
            .filter(|e| matches!(e, Event::Round { .. }))
            .count();
        assert_eq!(rounds, traced.diagnostics().total_rounds);
        let refines = events
            .iter()
            .filter(|e| matches!(e, Event::Refine { .. }))
            .count();
        assert_eq!(
            refines,
            traced.diagnostics().restarts - traced.diagnostics().failed_restarts
        );
        // Measurements flowed through the span/counter channel.
        assert!(rec.span_stats(Phase::Init).is_some());
        assert!(rec.span_stats(Phase::Assign).is_some());
        assert!(rec.span_stats(Phase::Refine).is_some());
        assert!(rec.counter_value("pool.dispatches") > 0);
    }

    #[test]
    fn fit_runs_end_to_end_and_is_deterministic() {
        let data = SyntheticSpec::new(1_500, 10, 3, 3.0).seed(21).generate();
        let params = Proclus::new(3, 3.0).seed(5);
        let a = params.fit(&data.points).unwrap();
        let b = params.fit(&data.points).unwrap();
        assert_eq!(a.assignment(), b.assignment());
        assert_eq!(a.objective(), b.objective());
        assert_eq!(a.clusters().len(), 3);
        // Dimension budget: sum |D_i| == k*l, each >= 2.
        let total: usize = a.clusters().iter().map(|c| c.dimensions.len()).sum();
        assert_eq!(total, 9);
        assert!(a.clusters().iter().all(|c| c.dimensions.len() >= 2));
    }

    #[test]
    fn fit_partitions_points() {
        let data = SyntheticSpec::new(800, 8, 2, 3.0).seed(3).generate();
        let model = Proclus::new(2, 3.0).seed(1).fit(&data.points).unwrap();
        let in_clusters: usize = model.clusters().iter().map(|c| c.len()).sum();
        assert_eq!(in_clusters + model.outliers().len(), 800);
        // Assignment is consistent with membership lists.
        for (i, c) in model.clusters().iter().enumerate() {
            for &p in &c.members {
                assert_eq!(model.assignment()[p], Some(i));
            }
        }
        for &p in model.outliers() {
            assert_eq!(model.assignment()[p], None);
        }
    }

    #[test]
    fn fit_rejects_bad_shapes() {
        let data = SyntheticSpec::new(100, 5, 2, 3.0).seed(3).generate();
        assert!(Proclus::new(0, 3.0).fit(&data.points).is_err());
        assert!(Proclus::new(2, 9.0).fit(&data.points).is_err());
        assert!(Proclus::new(101, 3.0).fit(&data.points).is_err());
    }

    #[test]
    fn fit_k1_degenerates_gracefully() {
        let data = SyntheticSpec::new(300, 6, 2, 3.0).seed(9).generate();
        let model = Proclus::new(1, 3.0).seed(2).fit(&data.points).unwrap();
        assert_eq!(model.clusters().len(), 1);
        // Single medoid: infinite sphere, no outliers possible.
        assert!(model.outliers().is_empty());
        assert_eq!(model.clusters()[0].len(), 300);
    }

    #[test]
    fn different_seeds_can_differ_but_both_are_valid() {
        let data = SyntheticSpec::new(1_000, 10, 3, 3.0).seed(33).generate();
        let a = Proclus::new(3, 3.0).seed(1).fit(&data.points).unwrap();
        let b = Proclus::new(3, 3.0).seed(2).fit(&data.points).unwrap();
        for m in [&a, &b] {
            let covered: usize =
                m.clusters().iter().map(|c| c.len()).sum::<usize>() + m.outliers().len();
            assert_eq!(covered, 1_000);
        }
    }

    #[test]
    fn fit_with_initial_medoids_validates_and_runs() {
        let data = SyntheticSpec::new(600, 8, 2, 3.0).seed(3).generate();
        let params = Proclus::new(2, 3.0).seed(5);
        // Valid start.
        let model = params
            .fit_with_initial_medoids(&data.points, &[10, 500])
            .unwrap();
        assert_eq!(model.clusters().len(), 2);
        // Deterministic for a fixed start.
        let model2 = params
            .fit_with_initial_medoids(&data.points, &[10, 500])
            .unwrap();
        assert_eq!(model.assignment(), model2.assignment());
        // Wrong count.
        assert!(params
            .fit_with_initial_medoids(&data.points, &[10])
            .is_err());
        // Duplicates.
        assert!(params
            .fit_with_initial_medoids(&data.points, &[10, 10])
            .is_err());
        // Out of range.
        assert!(params
            .fit_with_initial_medoids(&data.points, &[10, 600])
            .is_err());
    }

    /// On cleanly separated projected clusters the hill climbing should
    /// essentially always find the natural clustering.
    #[test]
    fn fit_recovers_planted_clusters() {
        let data = SyntheticSpec::new(3_000, 15, 4, 4.0)
            .seed(77)
            .outlier_fraction(0.0)
            .generate();
        let model = Proclus::new(4, 4.0).seed(11).fit(&data.points).unwrap();
        // Build the confusion between truth and output, require that
        // each output cluster is dominated by one input cluster.
        let mut dominated = 0;
        for c in model.clusters() {
            let mut counts = [0usize; 4];
            for &p in &c.members {
                if let Some(t) = data.labels[p].cluster() {
                    counts[t] += 1;
                }
            }
            let max = *counts.iter().max().unwrap();
            let total: usize = counts.iter().sum();
            if total > 0 && max as f64 >= 0.9 * total as f64 {
                dominated += 1;
            }
        }
        assert!(
            dominated >= 3,
            "at least 3 of 4 output clusters should be pure, got {dominated}"
        );
    }
}
