//! The fitted model returned by [`Proclus::fit`](crate::Proclus::fit).

use crate::error::ProclusError;
use proclus_math::{DistanceKind, Matrix};
use std::fmt;

/// One projected cluster: a medoid, the dimension set the cluster lives
/// in, and its member points.
#[derive(Clone, Debug, PartialEq)]
pub struct ProjectedCluster {
    /// Index (into the training matrix) of the medoid point.
    pub medoid_index: usize,
    /// The medoid's coordinates (copied, so the model is self-contained).
    pub medoid: Vec<f64>,
    /// The cluster's dimensions `Dᵢ`, sorted ascending, `|Dᵢ| ≥ 2`.
    pub dimensions: Vec<usize>,
    /// Indices of the member points (ascending).
    pub members: Vec<usize>,
    /// Centroid of the member points (zero vector if empty).
    pub centroid: Vec<f64>,
    /// The medoid's *sphere of influence* `Δᵢ`: the smallest segmental
    /// distance (under `Dᵢ`) to another medoid. Points farther than
    /// this from every medoid are outliers.
    pub sphere_of_influence: f64,
}

impl ProjectedCluster {
    /// Number of member points.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the cluster captured no points.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// A degradation the pipeline took instead of failing: the fit is
/// still valid, but the search did less than the parameters asked for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Degradation {
    /// Bad-medoid replacement ran out of unused candidates, so the
    /// climb stopped early with the best vertex seen.
    CandidatePoolExhausted {
        /// Round at which the pool ran dry.
        round: usize,
    },
    /// No round ever improved on the initial (infinite) objective —
    /// typically NaN objectives from degenerate coordinates. The climb
    /// stopped and refinement classified what it could.
    ObjectiveNeverImproved,
    /// One restart ended unusable (e.g. total cluster collapse); the
    /// surviving restarts produced the returned model.
    RestartFailed {
        /// Index of the failed restart.
        restart: usize,
        /// The failure, rendered.
        reason: String,
    },
    /// Rows with non-finite coordinates were excluded from medoid
    /// candidacy (they can still be assigned or flagged as outliers).
    NonFiniteRowsExcluded {
        /// How many rows were excluded.
        count: usize,
    },
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Degradation::CandidatePoolExhausted { round } => {
                write!(f, "candidate pool exhausted at round {round}")
            }
            Degradation::ObjectiveNeverImproved => {
                write!(f, "objective never improved (degenerate coordinates)")
            }
            Degradation::RestartFailed { restart, reason } => {
                write!(f, "restart {restart} failed: {reason}")
            }
            Degradation::NonFiniteRowsExcluded { count } => {
                write!(f, "{count} non-finite rows excluded from medoid candidacy")
            }
        }
    }
}

/// What happened during a fit, across every restart: how much work the
/// search did and which degradations (if any) it took to avoid
/// failing. Exposed as [`ProclusModel::diagnostics`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FitDiagnostics {
    /// Hill-climbing rounds executed, summed over all restarts.
    pub total_rounds: usize,
    /// Restarts executed.
    pub restarts: usize,
    /// Restarts that ended unusable (collapse) and were discarded.
    pub failed_restarts: usize,
    /// Medoids swapped out by the bad-medoid rule, summed over all
    /// restarts.
    pub bad_medoid_swaps: usize,
    /// The degradations taken, in the order they happened.
    pub degradations: Vec<Degradation>,
}

impl FitDiagnostics {
    /// `true` when the fit ran exactly as parameterized.
    pub fn is_clean(&self) -> bool {
        self.degradations.is_empty() && self.failed_restarts == 0
    }
}

impl fmt::Display for FitDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds over {} restarts ({} failed), {} bad-medoid swaps",
            self.total_rounds, self.restarts, self.failed_restarts, self.bad_medoid_swaps
        )?;
        for d in &self.degradations {
            write!(f, "\n  degraded: {d}")?;
        }
        Ok(())
    }
}

/// A fitted PROCLUS clustering.
#[derive(Clone, Debug)]
pub struct ProclusModel {
    pub(crate) clusters: Vec<ProjectedCluster>,
    pub(crate) outliers: Vec<usize>,
    pub(crate) assignment: Vec<Option<usize>>,
    pub(crate) objective: f64,
    pub(crate) iterative_objective: f64,
    pub(crate) rounds: usize,
    pub(crate) improvements: usize,
    pub(crate) distance: DistanceKind,
    pub(crate) diagnostics: FitDiagnostics,
}

impl ProclusModel {
    /// The `k` projected clusters.
    pub fn clusters(&self) -> &[ProjectedCluster] {
        &self.clusters
    }

    /// Indices of the points classified as outliers, ascending.
    pub fn outliers(&self) -> &[usize] {
        &self.outliers
    }

    /// Per-point assignment: `Some(cluster index)` or `None` (outlier).
    pub fn assignment(&self) -> &[Option<usize>] {
        &self.assignment
    }

    /// Final value of the paper's objective function (size-weighted
    /// average centroid spread over each cluster's dimensions; lower is
    /// better).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Best objective reached during the iterative phase, where every
    /// point (including eventual outliers) is assigned to some cluster.
    /// Unlike [`objective`](Self::objective) — which is computed after
    /// outlier removal — this value is comparable across runs and is
    /// what restart selection uses.
    pub fn iterative_objective(&self) -> f64 {
        self.iterative_objective
    }

    /// Number of hill-climbing rounds executed.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Number of rounds that improved the best objective.
    pub fn improvements(&self) -> usize {
        self.improvements
    }

    /// The metric the model was fitted with.
    pub fn distance(&self) -> DistanceKind {
        self.distance
    }

    /// What happened during the fit: work done across restarts and any
    /// graceful degradations taken instead of failing.
    pub fn diagnostics(&self) -> &FitDiagnostics {
        &self.diagnostics
    }

    /// Classify a new point with the fitted clusters: the cluster whose
    /// medoid is segmentally closest, or `None` when the point falls
    /// outside every medoid's sphere of influence (an outlier).
    pub fn classify(&self, point: &[f64]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        let mut inside_any = false;
        for (i, c) in self.clusters.iter().enumerate() {
            let d = self
                .distance
                .eval_segmental(point, &c.medoid, &c.dimensions);
            if d <= c.sphere_of_influence {
                inside_any = true;
            }
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        if inside_any {
            best.map(|(i, _)| i)
        } else {
            None
        }
    }

    /// The segmental distance from `point` to the *nearest* medoid,
    /// each medoid evaluated under its own cluster's dimension set —
    /// the per-point serving cost the streaming canary gate compares
    /// between a live model and a candidate. `None` for a model with
    /// no clusters.
    pub fn nearest_cost(&self, point: &[f64]) -> Option<f64> {
        self.clusters
            .iter()
            .map(|c| {
                self.distance
                    .eval_segmental(point, &c.medoid, &c.dimensions)
            })
            .reduce(f64::min)
    }

    /// Dimensionality of the space the model was fitted in (0 for a
    /// model with no clusters).
    pub fn dimensionality(&self) -> usize {
        self.clusters.first().map_or(0, |c| c.medoid.len())
    }

    /// AssignPoints (Figure 5) against the fitted clusters: every row
    /// of `points` is assigned to the cluster whose medoid is closest
    /// under that cluster's own dimension set, ties to the lower
    /// cluster index. This is the serving twin of
    /// [`crate::assign::assign_points`] — the medoid coordinates are
    /// exact copies of the training rows, so assigning the training
    /// matrix through this method is bit-identical to the offline pass.
    ///
    /// # Errors
    ///
    /// [`ProclusError::InvalidParameters`] when the model has no
    /// clusters or `points` does not match the model's dimensionality.
    pub fn assign_batch(&self, points: &Matrix) -> Result<Vec<usize>, ProclusError> {
        self.check_batch(points)?;
        let mut out = Vec::with_capacity(points.rows());
        for row in points.iter_rows() {
            let mut best = 0usize;
            let mut best_dist = f64::INFINITY;
            for (i, c) in self.clusters.iter().enumerate() {
                let dist = self.distance.eval_segmental(row, &c.medoid, &c.dimensions);
                if dist < best_dist {
                    best_dist = dist;
                    best = i;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// [`ProclusModel::classify`] over a whole batch: nearest cluster
    /// per row, or `None` for rows outside every medoid's sphere of
    /// influence.
    ///
    /// # Errors
    ///
    /// Same contract as [`ProclusModel::assign_batch`].
    pub fn classify_batch(&self, points: &Matrix) -> Result<Vec<Option<usize>>, ProclusError> {
        self.check_batch(points)?;
        Ok(points.iter_rows().map(|row| self.classify(row)).collect())
    }

    fn check_batch(&self, points: &Matrix) -> Result<(), ProclusError> {
        if self.clusters.is_empty() {
            return Err(ProclusError::InvalidParameters(
                "model has no clusters to assign against".into(),
            ));
        }
        let d = self.dimensionality();
        if points.cols() != d {
            return Err(ProclusError::InvalidParameters(format!(
                "batch has {} columns but the model was fitted in {d} dimensions",
                points.cols()
            )));
        }
        Ok(())
    }

    /// Convenience: assignment as plain labels where outliers map to
    /// `usize::MAX` (useful for quick comparisons in tests/benches).
    pub fn labels(&self) -> Vec<usize> {
        self.assignment
            .iter()
            .map(|a| a.unwrap_or(usize::MAX))
            .collect()
    }

    /// Construct a model directly from parts — exposed for tests and
    /// for the benchmark harness's ablation variants.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        points: &Matrix,
        medoids: Vec<usize>,
        dimensions: Vec<Vec<usize>>,
        assignment: Vec<Option<usize>>,
        spheres: Vec<f64>,
        objectives: (f64, f64),
        rounds: usize,
        improvements: usize,
        distance: DistanceKind,
    ) -> Self {
        let (objective, iterative_objective) = objectives;
        let k = medoids.len();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut outliers = Vec::new();
        for (p, a) in assignment.iter().enumerate() {
            match a {
                Some(i) => members[*i].push(p),
                None => outliers.push(p),
            }
        }
        let clusters = medoids
            .into_iter()
            .zip(dimensions)
            .zip(members)
            .zip(spheres)
            .map(|(((m, dims), mem), sphere)| {
                let centroid = points.centroid_of(&mem);
                ProjectedCluster {
                    medoid_index: m,
                    medoid: points.row(m).to_vec(),
                    dimensions: dims,
                    members: mem,
                    centroid,
                    sphere_of_influence: sphere,
                }
            })
            .collect();
        Self {
            clusters,
            outliers,
            assignment,
            objective,
            iterative_objective,
            rounds,
            improvements,
            distance,
            diagnostics: FitDiagnostics::default(),
        }
    }

    /// Attach fit diagnostics (builder style; used by the driver after
    /// aggregating across restarts).
    #[must_use]
    pub fn with_diagnostics(mut self, diagnostics: FitDiagnostics) -> Self {
        self.diagnostics = diagnostics;
        self
    }
}

impl fmt::Display for ProclusModel {
    /// Render a compact per-cluster summary, one line per cluster plus
    /// an outlier line — convenient for examples and debugging.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "PROCLUS model: {} clusters, {} outliers, objective {:.4}",
            self.clusters.len(),
            self.outliers.len(),
            self.objective
        )?;
        for (i, c) in self.clusters.iter().enumerate() {
            writeln!(
                f,
                "  cluster {i}: {:>7} points, dims {:?}",
                c.len(),
                c.dimensions
            )?;
        }
        write!(f, "  outliers: {:>6} points", self.outliers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> ProclusModel {
        let m = Matrix::from_rows(
            &[
                [0.0, 0.0],
                [10.0, 10.0],
                [0.5, 0.0],
                [10.0, 9.0],
                [50.0, 50.0],
            ],
            2,
        );
        ProclusModel::from_parts(
            &m,
            vec![0, 1],
            vec![vec![0, 1], vec![0, 1]],
            vec![Some(0), Some(1), Some(0), Some(1), None],
            vec![10.0, 10.0],
            (0.5, 0.6),
            7,
            3,
            DistanceKind::Manhattan,
        )
    }

    #[test]
    fn from_parts_groups_members_and_outliers() {
        let m = toy_model();
        assert_eq!(m.clusters()[0].members, vec![0, 2]);
        assert_eq!(m.clusters()[1].members, vec![1, 3]);
        assert_eq!(m.outliers(), &[4]);
        assert_eq!(m.clusters()[0].medoid, vec![0.0, 0.0]);
        assert_eq!(m.objective(), 0.5);
        assert_eq!(m.rounds(), 7);
        assert_eq!(m.improvements(), 3);
    }

    #[test]
    fn centroid_is_member_mean() {
        let m = toy_model();
        assert_eq!(m.clusters()[0].centroid, vec![0.25, 0.0]);
    }

    #[test]
    fn classify_inside_sphere() {
        let m = toy_model();
        assert_eq!(m.classify(&[1.0, 1.0]), Some(0));
        assert_eq!(m.classify(&[9.0, 9.0]), Some(1));
    }

    #[test]
    fn classify_outside_all_spheres_is_none() {
        let m = toy_model();
        assert_eq!(m.classify(&[500.0, 500.0]), None);
    }

    #[test]
    fn nearest_cost_is_min_over_per_cluster_segmental() {
        let m = toy_model();
        // Cluster 0 medoid (0,0), cluster 1 medoid (10,10), both on
        // dims {0,1}: segmental Manhattan to (1,1) is 1.0 vs 9.0.
        assert_eq!(m.nearest_cost(&[1.0, 1.0]), Some(1.0));
        assert_eq!(m.nearest_cost(&[9.0, 9.0]), Some(1.0));
    }

    #[test]
    fn labels_encode_outliers_as_max() {
        let m = toy_model();
        assert_eq!(m.labels(), vec![0, 1, 0, 1, usize::MAX]);
    }

    #[test]
    fn cluster_len_and_empty() {
        let m = toy_model();
        assert_eq!(m.clusters()[0].len(), 2);
        assert!(!m.clusters()[0].is_empty());
    }

    #[test]
    fn display_summarizes_model() {
        let s = toy_model().to_string();
        assert!(s.contains("2 clusters"));
        assert!(s.contains("1 outliers"));
        assert!(s.contains("cluster 0"));
        assert!(s.contains("objective 0.5"));
    }

    #[test]
    fn iterative_objective_accessor() {
        let m = toy_model();
        assert_eq!(m.objective(), 0.5);
        assert_eq!(m.iterative_objective(), 0.6);
    }

    #[test]
    fn diagnostics_attach_and_render() {
        let diag = FitDiagnostics {
            total_rounds: 40,
            restarts: 5,
            failed_restarts: 1,
            bad_medoid_swaps: 9,
            degradations: vec![
                Degradation::CandidatePoolExhausted { round: 8 },
                Degradation::NonFiniteRowsExcluded { count: 2 },
            ],
        };
        let m = toy_model().with_diagnostics(diag.clone());
        assert_eq!(m.diagnostics(), &diag);
        assert!(!m.diagnostics().is_clean());
        let s = m.diagnostics().to_string();
        assert!(s.contains("40 rounds"), "{s}");
        assert!(s.contains("candidate pool exhausted at round 8"), "{s}");
        assert!(s.contains("2 non-finite rows"), "{s}");
        assert!(FitDiagnostics::default().is_clean());
    }
}
