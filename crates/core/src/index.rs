//! The exact-pruning neighbor index (ROADMAP item 4).
//!
//! Every hill-climbing round spends O(N·k·d) on two queries: the
//! **range query** behind [`crate::locality::localities`] ("which
//! points lie within `δᵢ` of medoid `mᵢ` under the full-dimensional
//! segmental metric?") and the **nearest-medoid query** behind
//! [`crate::assign::assign_points`] ("which medoid is closest under its
//! own dimension set?"). This module provides a zero-dependency pruning
//! index that skips most of the exact segmental-distance evaluations in
//! those queries **without changing a single result bit**: every bound
//! is a *certified lower bound* on the exact distance, so it can only
//! rule out candidates that provably cannot qualify — the surviving
//! candidate superset is always verified by the exact evaluation the
//! unindexed code would have run, in the same order, producing the same
//! bits (including the `X` accumulations of the fused kernels, which
//! add exactly the same member rows in the same ascending order).
//!
//! # Sketch table (range query)
//!
//! Following the random-projection bounds of Kerber & Raghvendra
//! (arXiv:1407.2063), the index precomputes [`SKETCH_ROWS`] signed
//! projections per point: `S_r(p) = Σ_j s_{rj}·p_j` with fixed signs
//! `s_{rj} ∈ {±1}`. For any sign vector and any pair `(p, m)`,
//!
//! ```text
//! |S_r(p) − S_r(m)| = |Σ_j s_{rj}(p_j − m_j)| ≤ Σ_j |p_j − m_j| = ‖p − m‖₁
//! ```
//!
//! by the triangle inequality, which yields a lower bound on every
//! segmental metric the workspace supports over the full dimension set:
//!
//! * Manhattan: `d(p,m) = ‖p−m‖₁ / d ≥ |ΔS_r| / d`
//! * Euclidean: `d(p,m) = ‖p−m‖₂ / √d ≥ (|ΔS_r|/√d) / √d = |ΔS_r| / d`
//!   (Cauchy–Schwarz: `|ΔS_r| ≤ ‖s_r‖₂·‖p−m‖₂ = √d·‖p−m‖₂`)
//! * Chebyshev: `d(p,m) = ‖p−m‖∞ ≥ ‖p−m‖₁ / d ≥ |ΔS_r| / d`
//!
//! so the single formula `max_r |ΔS_r| / d` is a valid lower bound for
//! all three. The signs come from a dedicated constant-seeded RNG —
//! *not* the fit's RNG stream — so building the index perturbs no
//! search decision.
//!
//! # Per-medoid triangle bounds (range query)
//!
//! Within one range pass all distances live in the same metric, so for
//! any anchor medoid `mⱼ` whose exact distance `d(p, mⱼ)` was already
//! computed for this point, `d(p, mᵢ) ≥ |d(p, mⱼ) − d(mⱼ, mᵢ)|`. The
//! medoid–medoid distances are O(k²·d) per pass (the same order as the
//! `medoid_deltas` computation each round already performs) and cached
//! in the per-pass [`FusedPruneCtx`].
//!
//! # Adaptive gating
//!
//! Whole-pair bounds only pay when the data's *full-dimensional*
//! geometry separates points from medoids. On exactly the inputs the
//! paper targets — clusters that exist only in small projected
//! subspaces, drowned in noise dimensions — full-dimensional distances
//! concentrate and the bounds almost never fire, yet every pair would
//! still pay for them. Each range scan therefore probes its first
//! [`PROBE_POINTS`] points with the bounds enabled and switches them
//! off for the remainder when fewer than 1 in
//! 2^[`PROBE_DISABLE_SHIFT`] probed pairs pruned. The decision is a
//! pure function of the scanned block's rows, so counters and results
//! stay independent of thread count, and the gate can only skip an
//! *attempt* to prune — never change a result bit.
//!
//! # Floating-point safety margin
//!
//! The mathematical bounds above hold for real arithmetic; the computed
//! sketch differences and anchor distances carry rounding error. Summing
//! `d` terms bounded by the coordinate magnitudes gives an absolute
//! error of at most `γ_d·(‖p‖₁ + ‖m‖₁)` with `γ_d ≈ d·ε/2`, and after
//! the `1/d` segmental normalization every quantity the prune compares
//! (the bound *and* the exact evaluation it reasons about) has error
//! `O(ε·(‖p‖₁ + ‖m‖₁))`. A candidate is therefore only pruned when
//!
//! ```text
//! lower_bound − SLACK·(‖p‖₁ + max_m ‖m‖₁) > radius
//! ```
//!
//! with [`SLACK`] = 1024·ε — three orders of magnitude above the worst
//! error term, yet ~1e-13 relative to the coordinate scale, so it costs
//! essentially no pruning power. NaN or infinite coordinates make the
//! bound (or the slack) NaN/∞, every comparison comes out `false`, and
//! the point falls through to the exact evaluation — degenerate data
//! keeps the exact path's semantics automatically.
//!
//! # Nearest-medoid query (monotone prefix bound)
//!
//! The per-medoid dimension sets `Dᵢ` change every round, so the
//! full-dimensional sketches cannot bound the *subspace* segmental
//! distance (a restricted distance can be arbitrarily smaller than any
//! full-dimensional functional). The assignment kernels prune with an
//! exact device instead: [`segmental_bounded`] accumulates the
//! segmental distance dimension by dimension and abandons the candidate
//! as soon as the **prefix accumulator already certifies the final
//! value cannot beat the current best**. IEEE-754 addition of
//! non-negative terms is monotone (`fl(a + b) ≥ a` for `b ≥ 0`,
//! because `a` is representable and rounding-to-nearest of a value
//! `≥ a` cannot fall below `a`), and division by a positive constant,
//! `sqrt`, and `max` are monotone too, so the final value is always `≥`
//! every prefix value. A skipped candidate satisfies `dist ≥ best`,
//! which under the strict `<` tie-break rule ("ties go to the lower
//! cluster index") is precisely "cannot win", so winners are
//! bit-identical to the full evaluation.
//!
//! To keep the accumulation loop at one add per dimension plus one
//! compare per [`PRUNE_CHUNK`] dimensions (no division or square root
//! inside the loop, no compare on the add's dependency chain), the
//! comparison runs in **raw accumulator units**: [`raw_ge_threshold`]
//! converts a segmental-value threshold `t` into a raw threshold `R` —
//! the plain sum for
//! Manhattan, the sum of squares for Euclidean, the running max for
//! Chebyshev — such that `prefix_raw ≥ R` certifies
//! `final_segmental ≥ t`. For Chebyshev the conversion is exact
//! (`R = t`; the accumulator *is* the segmental value). For the other
//! two metrics `R` carries a small upward rounding margin, so the
//! conversion can only make pruning *more* conservative, never unsound;
//! thresholds in the deep-subnormal range, where relative-error
//! reasoning breaks down, are refused outright (`R = ∞`, no pruning).
//! [`raw_gt_threshold`] is the strict-inequality twin used where the
//! decided comparison is `dist ≤ radius` rather than `dist < best`.
//!
//! # Observability
//!
//! Pruning effectiveness is *engine configuration*, not a search fact:
//! the [`PruneStats`] counters flow to the run manifest as `index.*`
//! (see `inspect-trace`), never into the deterministic event stream —
//! the same split as the cache's `cache.*` counters and the pool's
//! physical stats.

use proclus_math::{DistanceKind, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Signed projections kept per point. Eight rows make the sketch bound
/// `max_r |ΔS_r|/d` tight enough to matter while keeping the per-pair
/// bound check an order of magnitude cheaper than an exact evaluation
/// at the dimensionalities the paper studies.
pub const SKETCH_ROWS: usize = 8;

/// Fixed seed for the sketch sign vectors. Deliberately decoupled from
/// the fit's RNG: the index must not shift any seeded search decision,
/// and indexed/unindexed fits must emit identical event streams.
const SKETCH_SEED: u64 = 0x5EED_1DE7_ACE5_0FB1;

/// Floating-point safety margin multiplier (see the module docs): a
/// candidate is pruned only when its lower bound clears the query
/// radius by more than `SLACK · (‖p‖₁ + max_m ‖m‖₁)`.
const SLACK: f64 = 1024.0 * f64::EPSILON;

/// Monotone pruning-effectiveness counters, exported to the run
/// manifest as `index.*` (measurement channel only — never the event
/// stream; see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Range-query candidates pruned by the sketch lower bound.
    pub range_sketch_pruned: u64,
    /// Range-query candidates pruned by a medoid triangle bound.
    pub range_triangle_pruned: u64,
    /// Range-query candidates that survived the whole-pair bounds but
    /// were abandoned mid-evaluation by the monotone prefix bound.
    pub range_prefix_pruned: u64,
    /// Range-query candidates that survived the bounds and were
    /// verified by an exact segmental-distance evaluation.
    pub range_verified: u64,
    /// Nearest-medoid candidates abandoned early by the monotone
    /// prefix bound.
    pub nearest_pruned: u64,
    /// Nearest-medoid candidates evaluated to completion.
    pub nearest_verified: u64,
}

impl PruneStats {
    /// Accumulate another block's counters.
    pub fn merge(&mut self, other: PruneStats) {
        self.range_sketch_pruned += other.range_sketch_pruned;
        self.range_triangle_pruned += other.range_triangle_pruned;
        self.range_prefix_pruned += other.range_prefix_pruned;
        self.range_verified += other.range_verified;
        self.nearest_pruned += other.nearest_pruned;
        self.nearest_verified += other.nearest_verified;
    }
}

/// The per-fit pruning index: one signed-projection sketch row set and
/// the L1 norm per point. Built once per fit (O(N·d·[`SKETCH_ROWS`]))
/// and reused by every round, restart, and the refinement phase;
/// immutable, so it is shared with the worker pool behind an [`Arc`].
#[derive(Debug)]
pub struct NeighborIndex {
    /// `sketches[p·R .. (p+1)·R]` = the R signed projections of point p.
    sketches: Vec<f64>,
    /// `‖p‖₁` per point — the magnitude scale of the slack term.
    norm1: Vec<f64>,
}

impl NeighborIndex {
    /// Build the index over `points`. The sketch signs come from a
    /// constant-seeded RNG (never the fit's RNG), so the build is a
    /// pure function of the data shape — two fits over the same matrix
    /// share bit-identical index state regardless of their seeds.
    ///
    /// The bounds are valid for every [`DistanceKind`] (see the module
    /// docs), so the index itself is metric-agnostic; `_metric` is
    /// accepted for future metric-specialized sketches.
    pub fn build(points: &Matrix, _metric: DistanceKind) -> Self {
        let n = points.rows();
        let d = points.cols();
        let mut rng = StdRng::seed_from_u64(SKETCH_SEED);
        let mut signs = vec![1.0f64; SKETCH_ROWS * d];
        for s in signs.iter_mut() {
            if rng.random_bool(0.5) {
                *s = -1.0;
            }
        }
        let mut sketches = vec![0.0f64; n * SKETCH_ROWS];
        let mut norm1 = vec![0.0f64; n];
        for p in 0..n {
            let row = points.row(p);
            norm1[p] = row.iter().map(|v| v.abs()).sum();
            for r in 0..SKETCH_ROWS {
                let srow = &signs[r * d..(r + 1) * d];
                sketches[p * SKETCH_ROWS + r] = row.iter().zip(srow).map(|(x, s)| x * s).sum();
            }
        }
        NeighborIndex { sketches, norm1 }
    }

    /// The sketch row of point `p`.
    #[inline]
    fn point_sketch(&self, p: usize) -> &[f64] {
        &self.sketches[p * SKETCH_ROWS..(p + 1) * SKETCH_ROWS]
    }

    /// `‖p‖₁` of point `p`.
    #[inline]
    pub fn norm1(&self, p: usize) -> f64 {
        self.norm1[p]
    }
}

/// Per-pass context for the pruned range query: the queried medoids'
/// sketch rows, their pairwise full-dimensional segmental distances
/// (the triangle-bound anchors), and the precomputed slack scale.
/// O(k²·d + k·R) to build — the same order as the `medoid_deltas`
/// computation every round already performs.
pub struct FusedPruneCtx {
    index: Arc<NeighborIndex>,
    /// `med_sketch[i·R .. (i+1)·R]` = sketch row of `medoids[i]`.
    med_sketch: Vec<f64>,
    /// `mm[j·k + i]` = full-dimensional segmental distance between
    /// `medoids[j]` and `medoids[i]`.
    mm: Vec<f64>,
    /// `SLACK · max_i ‖medoids[i]‖₁` — the medoid half of the margin.
    slack_med: f64,
    /// `d · (1 + 32ε)` — the sketch test compares `|ΔS_r|` against
    /// `(radius + slack) · d_up` directly, so the per-row check is one
    /// subtract, one abs, and one compare; the upward margin on `d`
    /// absorbs the rounding of the reformulated comparison (the `1024ε`
    /// slack dwarfs it, but the margin keeps the argument local).
    d_up: f64,
    k: usize,
}

impl FusedPruneCtx {
    /// Build the context for a range pass over `medoids`.
    pub fn new(
        index: Arc<NeighborIndex>,
        points: &Matrix,
        medoids: &[usize],
        metric: DistanceKind,
    ) -> Self {
        let k = medoids.len();
        let d = points.cols();
        let all_dims: Vec<usize> = (0..d).collect();
        let mut med_sketch = Vec::with_capacity(k * SKETCH_ROWS);
        let mut slack_med = 0.0f64;
        for &m in medoids {
            med_sketch.extend_from_slice(index.point_sketch(m));
            slack_med = slack_med.max(index.norm1(m));
        }
        slack_med *= SLACK;
        let mut mm = vec![0.0f64; k * k];
        for i in 0..k {
            for j in (i + 1)..k {
                let dist = metric.eval_segmental(
                    points.row(medoids[i]),
                    points.row(medoids[j]),
                    &all_dims,
                );
                mm[i * k + j] = dist;
                mm[j * k + i] = dist;
            }
        }
        FusedPruneCtx {
            index,
            med_sketch,
            mm,
            slack_med,
            d_up: d.max(1) as f64 * (1.0 + 32.0 * f64::EPSILON),
            k,
        }
    }

    /// Number of medoid slots this context covers.
    #[inline]
    pub fn slots(&self) -> usize {
        self.k
    }

    /// Can point `p` be proven to lie strictly outside radius `radius`
    /// of medoid slot `slot`? `evaluated[j]` holds the exact distances
    /// of `p` to the slots `j < slot` already verified in this pass
    /// (`NaN` for slots that were pruned — a NaN anchor yields a NaN
    /// bound, which never prunes, so the sentinel is safe).
    ///
    /// Returns `true` only when the exact evaluation would certainly
    /// fail the `dist ≤ radius` membership test (up to the documented
    /// slack margin) — never for NaN/∞ data, which always falls
    /// through to the exact path.
    #[inline]
    pub fn prunes(
        &self,
        p: usize,
        slot: usize,
        radius: f64,
        evaluated: &[f64],
        stats: &mut PruneStats,
    ) -> bool {
        let idx = &*self.index;
        let slack = SLACK * idx.norm1[p] + self.slack_med;
        // Triangle bounds from anchors exactly evaluated earlier for
        // this point: d(p, m_slot) >= |d(p, m_j) - d(m_j, m_slot)|.
        let mm_row = &self.mm[..];
        for (j, &dj) in evaluated.iter().enumerate() {
            let lb = (dj - mm_row[j * self.k + slot]).abs();
            if lb - slack > radius {
                stats.range_triangle_pruned += 1;
                return true;
            }
        }
        // Sketch bound: any row with |S_r(p) - S_r(m)| / d - slack >
        // radius prunes. Tested in the pre-multiplied form
        // |ΔS_r| > (radius + slack)·d_up — one subtract, abs, and
        // compare per row, exiting on the first row that decides (the
        // per-row test fires iff the max-over-rows test would, since
        // the comparison is monotone in |ΔS_r|). A NaN or infinite
        // operand anywhere makes the comparison false and falls
        // through to the exact path.
        let rhs = (radius + slack) * self.d_up;
        let ps = idx.point_sketch(p);
        let ms = &self.med_sketch[slot * SKETCH_ROWS..(slot + 1) * SKETCH_ROWS];
        for (a, b) in ps.iter().zip(ms) {
            if (a - b).abs() > rhs {
                stats.range_sketch_pruned += 1;
                return true;
            }
        }
        false
    }
}

/// Points probed with the full pruning machinery at the start of each
/// scan before the adaptive gate decides whether the whole-pair bounds
/// pay for themselves (see [`PROBE_DISABLE_SHIFT`]). The probe spans
/// whole points (× the slot count in pairs), so the decision is a pure
/// function of the scanned rows — never of thread count or timing.
pub const PROBE_POINTS: usize = 64;

/// The gate disables the whole-pair bounds for the rest of a scan when
/// fewer than `probed_pairs >> PROBE_DISABLE_SHIFT` (1 in 8) of the
/// probed pairs pruned: below that rate the O(k + R) per-pair bound
/// arithmetic costs more than the exact evaluations it saves, which is
/// exactly what happens when projected clusters leave no structure in
/// the full-dimensional geometry. Disabling changes no result bit —
/// the gate only decides whether to *attempt* pruning.
pub const PROBE_DISABLE_SHIFT: u32 = 3;

/// The monotone prefix device (mid-evaluation abandonment) stays
/// enabled after the probe only when at least `PREFIX_KEEP_NUM /
/// PREFIX_KEEP_DEN` (3 in 4) of the probed evaluations abandoned. The
/// abandonment branch is data-dependent: at mixed exit depths it
/// mispredicts roughly once per candidate, which costs more than the
/// skipped tail of a 5–20-dimension evaluation saves. Only a heavily
/// biased regime — almost every reached candidate abandons, and early —
/// beats the plain evaluation, and that is exactly the regime a high
/// keep-rate selects for. Like the whole-pair gate, the decision is a
/// pure function of the probed rows and can only skip an *attempt* to
/// abandon.
pub const PREFIX_KEEP_NUM: u64 = 3;
/// See [`PREFIX_KEEP_NUM`].
pub const PREFIX_KEEP_DEN: u64 = 4;

/// Dimensions accumulated between abandonment checks in the bounded
/// evaluations. Per-element checks put a compare-and-branch on the
/// floating-point dependency chain of every add — nearly doubling the
/// cost of the (majority) evaluations that never abandon. Checking at
/// chunk boundaries keeps the overhead at one compare per
/// [`PRUNE_CHUNK`] dims while giving up at most `PRUNE_CHUNK − 1`
/// elements of savings per abandoned pair.
pub const PRUNE_CHUNK: usize = 4;

/// Minimum dimension-set size for which the nearest-medoid kernels use
/// the bounded evaluation at all. An abandonment can skip at most
/// `len − PRUNE_CHUNK` element operations, while the bounded form pays
/// a fixed per-candidate toll (threshold multiply, chunk bookkeeping,
/// boundary compares) — below roughly two chunks of potential savings
/// the toll always exceeds the win and the exact evaluation is cheaper
/// than reasoning about skipping it. The paper's typical `l` (≈ 3–7)
/// lands below this cutoff on purpose: tiny projections are evaluated
/// plainly, and the device engages exactly when evaluations are
/// expensive enough to be worth abandoning.
pub const NEAREST_MIN_DIMS: usize = 2 * PRUNE_CHUNK + 1;

/// Raw accumulators below the normal floating-point range are refused
/// by the threshold conversions (no pruning) — absolute rounding error
/// in the subnormal regime is not covered by relative-error margins.
const RAW_FLOOR: f64 = 1e-280;

/// Upward rounding margin applied to converted raw thresholds: a few
/// ulps of headroom over the two or three roundings the conversion
/// itself performs, so `prefix_raw ≥ R` keeps certifying the real
/// inequality. Overshooting only costs pruning power, never soundness.
const RAW_MARGIN: f64 = 1.0 + 32.0 * f64::EPSILON;

/// The next representable `f64` above `x` (`f64::next_up`, which this
/// workspace's MSRV predates). NaN and `+∞` map to themselves.
fn next_up(x: f64) -> f64 {
    if x.is_nan() || x == f64::INFINITY {
        return x;
    }
    if x == 0.0 {
        return f64::from_bits(1); // smallest positive subnormal
    }
    if x > 0.0 {
        f64::from_bits(x.to_bits() + 1)
    } else {
        f64::from_bits(x.to_bits() - 1)
    }
}

/// Convert a segmental-value threshold `t` into a **raw accumulator**
/// threshold `R` for [`segmental_bounded`]: whenever the running
/// accumulator (Manhattan sum, Euclidean sum of squares, Chebyshev
/// running max) over `len` dimensions reaches `R`, the final segmental
/// value is certified `≥ t`.
///
/// * `t ≤ 0` → `R = 0`: every segmental value is `≥ 0 ≥ t` (and a NaN
///   accumulator never satisfies `≥ 0`, preserving NaN fall-through).
/// * `t = ∞` → `R = ∞`: only an infinite accumulator triggers, and an
///   infinite accumulator does force an infinite final value.
/// * `t = NaN` → `R = ∞` is still sound (an infinite accumulator means
///   an infinite final value, but a NaN threshold comes from NaN state
///   the caller's comparisons already treat as "never wins").
/// * Deep-subnormal conversions (below [`RAW_FLOOR`]) → `R = ∞`:
///   pruning is refused rather than argued about.
#[inline]
pub fn raw_ge_threshold(metric: DistanceKind, t: f64, len: usize) -> f64 {
    raw_tbase(metric, t) * raw_len_factor(metric, len)
}

/// The length-independent half of [`raw_ge_threshold`], for argmin
/// loops that compare one incumbent threshold against many candidate
/// dimension sets: precompute `raw_tbase(metric, best)` once per
/// incumbent update and `raw_len_factor(metric, di.len())` once per
/// slot, and the per-candidate threshold is the single multiply
/// `tbase * len_factor`. The margin is applied here (to `t` rather
/// than to `t·len`); the extra rounding of the deferred multiply is
/// covered by the same [`RAW_MARGIN`] headroom. The special values
/// survive the multiply: `∞ · len = ∞`, `0 · len = 0`, and for
/// Chebyshev the factor is exactly `1.0`.
#[inline]
pub fn raw_tbase(metric: DistanceKind, t: f64) -> f64 {
    if t.is_nan() {
        return f64::INFINITY;
    }
    if t <= 0.0 {
        return 0.0;
    }
    match metric {
        // The accumulator *is* the final value prefix: exact, no margin.
        DistanceKind::Chebyshev => t,
        DistanceKind::Manhattan => {
            if t < RAW_FLOOR {
                f64::INFINITY
            } else {
                t * RAW_MARGIN
            }
        }
        DistanceKind::Euclidean => {
            let sq = t * t;
            if sq < RAW_FLOOR {
                f64::INFINITY
            } else {
                sq * RAW_MARGIN
            }
        }
    }
}

/// The per-dimension-set half of [`raw_ge_threshold`]: `len` as a
/// float for the sum-style accumulators, `1.0` for Chebyshev (whose
/// accumulator carries no length normalization).
#[inline]
pub fn raw_len_factor(metric: DistanceKind, len: usize) -> f64 {
    match metric {
        DistanceKind::Chebyshev => 1.0,
        DistanceKind::Manhattan | DistanceKind::Euclidean => len.max(1) as f64,
    }
}

/// Strict-inequality twin of [`raw_ge_threshold`]: accumulator `≥ R`
/// certifies the final segmental value is strictly `> t`. Used where
/// the decided comparison is a `dist ≤ radius` membership test. Returns
/// NaN (which no accumulator ever satisfies) when `t` is NaN or `+∞` —
/// no finite-or-infinite value is strictly greater, so pruning must
/// never fire.
#[inline]
pub fn raw_gt_threshold(metric: DistanceKind, t: f64, len: usize) -> f64 {
    if t.is_nan() || t == f64::INFINITY {
        return f64::NAN;
    }
    if t < 0.0 {
        return 0.0;
    }
    raw_ge_threshold(metric, next_up(t), len)
}

/// Evaluate `metric.eval_segmental(a, b, dims)` incrementally,
/// abandoning the candidate as soon as the running raw accumulator
/// reaches `raw_threshold` (converted from a segmental-value threshold
/// by [`raw_ge_threshold`] / [`raw_gt_threshold`]; the prefix
/// accumulator is a certified lower bound on the final accumulator —
/// see the module docs for the IEEE monotonicity argument). Returns
/// `None` on abandonment, otherwise `Some(exact)` with a value
/// bit-identical to the plain evaluation (same summation order, same
/// final normalization).
///
/// The threshold is checked at [`PRUNE_CHUNK`] boundaries (and after
/// the final element), not per element: per-element compares sit on
/// the accumulator's dependency chain and nearly double the cost of
/// evaluations that never abandon, while a chunk-boundary check gives
/// up at most `PRUNE_CHUNK − 1` elements of savings. The final check
/// runs even when the accumulator is complete — abandoning there is
/// still sound (the "prefix" is the whole sum) and saves the
/// normalization, and it keeps the device live for dimension sets
/// shorter than one chunk.
///
/// A NaN `raw_threshold` never prunes; a NaN accumulator (NaN data)
/// never satisfies the `≥` comparison and falls through to the exact
/// NaN result, preserving the unpruned kernels' NaN semantics.
#[inline]
pub fn segmental_bounded(
    metric: DistanceKind,
    a: &[f64],
    b: &[f64],
    dims: &[usize],
    raw_threshold: f64,
) -> Option<f64> {
    if dims.is_empty() {
        // Mirror `eval_segmental`'s empty-projection convention exactly
        // (0.0, not 0/0) so the bounded form is a drop-in replacement.
        return if 0.0 >= raw_threshold {
            None
        } else {
            Some(0.0)
        };
    }
    let len = dims.len() as f64;
    match metric {
        DistanceKind::Manhattan => {
            let mut sum = 0.0f64;
            for chunk in dims.chunks(PRUNE_CHUNK) {
                for &j in chunk {
                    sum += (a[j] - b[j]).abs();
                }
                if sum >= raw_threshold {
                    return None;
                }
            }
            Some(sum / len)
        }
        DistanceKind::Euclidean => {
            let mut sum = 0.0f64;
            for chunk in dims.chunks(PRUNE_CHUNK) {
                for &j in chunk {
                    let diff = a[j] - b[j];
                    sum += diff * diff;
                }
                if sum >= raw_threshold {
                    return None;
                }
            }
            Some((sum / len).sqrt())
        }
        DistanceKind::Chebyshev => {
            let mut worst = 0.0f64;
            for chunk in dims.chunks(PRUNE_CHUNK) {
                for &j in chunk {
                    worst = worst.max((a[j] - b[j]).abs());
                }
                if worst >= raw_threshold {
                    return None;
                }
            }
            Some(worst)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * d).map(|_| rng.random_range(0.0..100.0)).collect();
        Matrix::from_vec(data, n, d)
    }

    /// The heart of the prune-only guarantee: across metrics and seeds,
    /// whenever `prunes` fires for a (point, slot, radius) triple, the
    /// exact segmental distance really exceeds the radius.
    #[test]
    fn prune_decisions_are_never_false_negatives() {
        for metric in [
            DistanceKind::Manhattan,
            DistanceKind::Euclidean,
            DistanceKind::Chebyshev,
        ] {
            for seed in [1u64, 7, 42] {
                let points = random_points(400, 9, seed);
                let medoids = vec![3usize, 57, 200, 311];
                let all_dims: Vec<usize> = (0..points.cols()).collect();
                let index = Arc::new(NeighborIndex::build(&points, metric));
                let ctx = FusedPruneCtx::new(Arc::clone(&index), &points, &medoids, metric);
                let mut stats = PruneStats::default();
                for p in 0..points.rows() {
                    let mut evaluated = [f64::NAN; 4];
                    for (i, &m) in medoids.iter().enumerate() {
                        let exact = metric.eval_segmental(points.row(p), points.row(m), &all_dims);
                        // Radii straddling the exact distance: pruning
                        // must only fire for radii strictly below it.
                        for radius in [exact * 0.5, exact * 0.99, exact, exact * 1.5] {
                            if ctx.prunes(p, i, radius, &evaluated[..i], &mut stats) {
                                assert!(
                                    exact > radius,
                                    "{metric:?} seed {seed}: pruned p={p} slot={i} \
                                     at radius {radius} but exact = {exact}"
                                );
                            }
                        }
                        evaluated[i] = exact;
                    }
                }
                assert!(
                    stats.range_sketch_pruned + stats.range_triangle_pruned > 0,
                    "{metric:?} seed {seed}: the bounds never fired — index is inert"
                );
            }
        }
    }

    /// An unreachable threshold never abandons, and completing the
    /// evaluation reproduces `eval_segmental` bit for bit.
    #[test]
    fn segmental_bounded_completes_bit_identically() {
        for metric in [
            DistanceKind::Manhattan,
            DistanceKind::Euclidean,
            DistanceKind::Chebyshev,
        ] {
            let points = random_points(60, 12, 5);
            let dims = vec![0usize, 3, 5, 7, 11];
            for p in 0..points.rows() {
                for q in 0..points.rows() {
                    let exact = metric.eval_segmental(points.row(p), points.row(q), &dims);
                    let full =
                        segmental_bounded(metric, points.row(p), points.row(q), &dims, f64::NAN);
                    assert_eq!(full.map(f64::to_bits), Some(exact.to_bits()), "{metric:?}");
                }
            }
        }
    }

    /// Abandoning against a converted threshold is equivalent to the
    /// full evaluation's comparison: whenever the bounded form returns
    /// `None` under `raw_ge_threshold(best)`, the exact distance really
    /// is `>= best` (and under `raw_gt_threshold(radius)`, strictly
    /// `> radius`).
    #[test]
    fn segmental_bounded_skips_only_losers() {
        for metric in [
            DistanceKind::Manhattan,
            DistanceKind::Euclidean,
            DistanceKind::Chebyshev,
        ] {
            let points = random_points(80, 8, 13);
            let dims = vec![1usize, 2, 4, 6];
            for p in 0..points.rows() {
                for q in (0..points.rows()).step_by(7) {
                    let exact = metric.eval_segmental(points.row(p), points.row(q), &dims);
                    for t in [exact * 0.3, exact * 0.9999, exact, exact * 1.5] {
                        let rt = raw_ge_threshold(metric, t, dims.len());
                        match segmental_bounded(metric, points.row(p), points.row(q), &dims, rt) {
                            Some(v) => assert_eq!(v.to_bits(), exact.to_bits()),
                            None => assert!(
                                exact >= t,
                                "{metric:?}: skipped but exact {exact} < threshold {t}"
                            ),
                        }
                        let rt = raw_gt_threshold(metric, t, dims.len());
                        match segmental_bounded(metric, points.row(p), points.row(q), &dims, rt) {
                            Some(v) => assert_eq!(v.to_bits(), exact.to_bits()),
                            None => assert!(
                                exact > t,
                                "{metric:?}: skipped but exact {exact} <= radius {t}"
                            ),
                        }
                    }
                }
            }
        }
    }

    /// Threshold-conversion edge cases: `t ≤ 0` prunes immediately for
    /// the `≥` form, NaN / `+∞` radii never prune the strict form, the
    /// deep-subnormal range refuses to prune, and the Chebyshev
    /// conversion is exact.
    #[test]
    fn raw_threshold_edge_cases() {
        for metric in [
            DistanceKind::Manhattan,
            DistanceKind::Euclidean,
            DistanceKind::Chebyshev,
        ] {
            assert_eq!(raw_ge_threshold(metric, 0.0, 5), 0.0, "{metric:?}");
            assert_eq!(raw_ge_threshold(metric, -1.0, 5), 0.0, "{metric:?}");
            assert_eq!(
                raw_ge_threshold(metric, f64::NAN, 5),
                f64::INFINITY,
                "{metric:?}"
            );
            assert_eq!(
                raw_ge_threshold(metric, f64::INFINITY, 5),
                f64::INFINITY,
                "{metric:?}"
            );
            assert!(raw_gt_threshold(metric, f64::NAN, 5).is_nan(), "{metric:?}");
            assert!(
                raw_gt_threshold(metric, f64::INFINITY, 5).is_nan(),
                "a dist <= INF membership test is always true; pruning must never fire"
            );
            assert_eq!(raw_gt_threshold(metric, -0.5, 5), 0.0, "{metric:?}");
        }
        // Subnormal thresholds are refused for the normalized metrics…
        assert_eq!(
            raw_ge_threshold(DistanceKind::Manhattan, 1e-300, 4),
            f64::INFINITY
        );
        assert_eq!(
            raw_ge_threshold(DistanceKind::Euclidean, 1e-200, 4),
            f64::INFINITY
        );
        // …while Chebyshev needs no margin at all: the accumulator is
        // the segmental value itself.
        assert_eq!(raw_ge_threshold(DistanceKind::Chebyshev, 1e-300, 4), 1e-300);
        assert_eq!(
            raw_gt_threshold(DistanceKind::Chebyshev, 0.0, 4),
            f64::from_bits(1)
        );
        // Finite positive thresholds sit strictly above the real
        // product, so the conversion can only under-prune.
        let rt = raw_ge_threshold(DistanceKind::Manhattan, 2.5, 4);
        assert!(rt > 2.5 * 4.0);
        let rt = raw_ge_threshold(DistanceKind::Euclidean, 2.5, 4);
        assert!(rt > 2.5 * 2.5 * 4.0);
    }

    /// NaN data must never be pruned — it has to reach the exact path
    /// so the NaN semantics of the unindexed kernels are preserved.
    #[test]
    fn nan_rows_are_never_pruned() {
        let rows: Vec<[f64; 3]> = vec![
            [0.0, 0.0, 0.0],
            [f64::NAN, 1.0, 2.0],
            [1e3, 1e3, 1e3],
            [f64::INFINITY, 0.0, 0.0],
        ];
        let points = Matrix::from_rows(&rows, 3);
        let metric = DistanceKind::Manhattan;
        let index = Arc::new(NeighborIndex::build(&points, metric));
        let medoids = vec![1usize, 3];
        let ctx = FusedPruneCtx::new(Arc::clone(&index), &points, &medoids, metric);
        let mut stats = PruneStats::default();
        for p in 0..points.rows() {
            for slot in 0..medoids.len() {
                assert!(
                    !ctx.prunes(p, slot, 0.0, &[f64::NAN; 0], &mut stats),
                    "non-finite medoid pruned p={p} slot={slot}"
                );
            }
        }
        // A NaN accumulator never satisfies a `>=` threshold: no skip,
        // even against the always-prunable threshold 0.
        let rt = raw_ge_threshold(metric, 0.0, 2);
        let got = segmental_bounded(metric, points.row(1), points.row(0), &[0, 1], rt);
        assert!(got.is_some_and(f64::is_nan));
    }

    /// The index build is deterministic and independent of the fit
    /// seed (the sign RNG is constant-seeded).
    #[test]
    fn index_build_is_deterministic() {
        let points = random_points(100, 6, 77);
        let a = NeighborIndex::build(&points, DistanceKind::Manhattan);
        let b = NeighborIndex::build(&points, DistanceKind::Euclidean);
        assert_eq!(a.sketches, b.sketches);
        assert_eq!(a.norm1, b.norm1);
    }

    #[test]
    fn prune_stats_merge_adds_fields() {
        let mut a = PruneStats {
            range_sketch_pruned: 1,
            range_triangle_pruned: 2,
            range_prefix_pruned: 6,
            range_verified: 3,
            nearest_pruned: 4,
            nearest_verified: 5,
        };
        a.merge(a);
        assert_eq!(
            a,
            PruneStats {
                range_sketch_pruned: 2,
                range_triangle_pruned: 4,
                range_prefix_pruned: 12,
                range_verified: 6,
                nearest_pruned: 8,
                nearest_verified: 10,
            }
        );
    }
}
