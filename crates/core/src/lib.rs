//! **PROCLUS** — the projected clustering algorithm of *Fast Algorithms
//! for Projected Clustering* (Aggarwal, Procopiuc, Wolf, Yu, Park —
//! SIGMOD 1999).
//!
//! Given `N` points in `d` dimensions, a target cluster count `k` and an
//! average per-cluster dimensionality `l`, PROCLUS returns a `(k+1)`-way
//! partition `{C₁ … C_k, O}` (with `O` the outliers) *and* a dimension
//! set `Dᵢ` for every cluster such that the points of `Cᵢ` are tightly
//! correlated exactly on `Dᵢ`. Distances inside a cluster are measured
//! with the **Manhattan segmental distance** `d_D(x, y) =
//! (Σ_{j∈D} |x_j − y_j|)/|D|`, so clusters of different subspace
//! dimensionality remain comparable.
//!
//! The algorithm runs in three phases (Figure 2 of the paper):
//!
//! 1. **Initialization** ([`init`]) — a random sample of size `A·k`
//!    reduced by the Gonzalez greedy farthest-point heuristic
//!    ([`greedy`]) to `B·k` candidate medoids, a likely superset of a
//!    *piercing* set.
//! 2. **Iterative phase** ([`iterate`]) — hill climbing over medoid
//!    sets: localities ([`locality`]) → per-medoid dimension selection
//!    by standardized per-dimension average distances ([`dims`]) →
//!    point assignment ([`assign`]) → objective evaluation
//!    ([`evaluate`]) → replacement of *bad* medoids.
//! 3. **Refinement** ([`refine`]) — dimensions recomputed once from the
//!    final clusters instead of the localities, points reassigned, and
//!    outliers detected via each medoid's *sphere of influence*.
//!
//! # Example
//!
//! ```
//! use proclus_core::Proclus;
//! use proclus_data::SyntheticSpec;
//!
//! let data = SyntheticSpec::new(2_000, 12, 4, 4.0).seed(42).generate();
//! let model = Proclus::new(4, 4.0).seed(7).fit(&data.points).unwrap();
//! assert_eq!(model.clusters().len(), 4);
//! // Σ|Dᵢ| = k·l and every cluster has at least 2 dimensions.
//! let total: usize = model.clusters().iter().map(|c| c.dimensions.len()).sum();
//! assert_eq!(total, 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod assign;
pub mod cache;
pub mod dims;
pub mod error;
pub mod evaluate;
pub mod greedy;
pub mod index;
pub mod init;
pub mod iterate;
pub mod kernel;
pub mod layout;
pub mod locality;
pub mod model;
pub mod parallel;
pub mod params;
pub mod pool;
pub mod refine;
pub mod registry;
pub mod rollover;
pub mod stream;

pub use error::ProclusError;
pub use index::NeighborIndex;
pub use model::{Degradation, FitDiagnostics, ProclusModel, ProjectedCluster};
pub use params::{InitStrategy, Proclus};
pub use registry::{
    decode_model, encode_model, ModelCodecError, ModelRegistry, RecoveryReport, RegistryError,
};
pub use rollover::{GateScores, RolloverOutcome, RolloverReport};
pub use stream::{
    BatchReport, DriftDetector, GateConfig, StreamConfig, StreamDiagnostics, StreamError,
    StreamServer, WindowSampler,
};
