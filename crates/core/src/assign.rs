//! AssignPoints (Figure 5): one pass assigning every point to the
//! medoid with the smallest Manhattan segmental distance relative to
//! that medoid's dimension set.
//!
//! # Empty dimension sets are rejected
//!
//! `eval_segmental` defines the distance over an empty projection as
//! `0.0` (an empty projection carries no information). Fed into
//! assignment, that convention is a trap: a medoid with `Dᵢ = ∅` is at
//! distance zero from *every* point, so it absorbs the entire dataset —
//! and if several medoids have empty sets, the tie rule collapses
//! everything onto the lowest such index. No such input is ever
//! produced by the pipeline (FindDimensions guarantees `|Dᵢ| ≥ 2`; see
//! [`crate::dims`]), so [`assign_points`] treats an empty dimension set
//! as API misuse and panics rather than silently emitting a collapsed
//! clustering.

use crate::index::{raw_len_factor, raw_tbase, segmental_bounded, PruneStats, NEAREST_MIN_DIMS};
use proclus_math::{DistanceKind, Matrix};

/// Assignment preconditions shared by the exact and pruned variants.
fn validate_assign_inputs(medoids: &[usize], dims: &[Vec<usize>]) {
    assert_eq!(medoids.len(), dims.len());
    assert!(!medoids.is_empty());
    assert!(
        dims.iter().all(|di| !di.is_empty()),
        "empty dimension set: a medoid with no dimensions is at distance 0 \
         from every point and would absorb the whole dataset (PROCLUS \
         guarantees |D_i| >= 2)"
    );
}

/// Assign every point to its closest medoid under the per-medoid
/// segmental distances. Returns `assignment[p] = cluster index`.
///
/// Ties go to the lower cluster index (deterministic). Medoid points
/// assign to themselves (distance 0 to their own medoid; a different
/// medoid could only tie, not win).
///
/// # Panics
///
/// Panics when `medoids` is empty, when `medoids` and `dims` disagree
/// in length, or when any dimension set is empty (see the module docs).
pub fn assign_points(
    points: &Matrix,
    medoids: &[usize],
    dims: &[Vec<usize>],
    metric: DistanceKind,
) -> Vec<usize> {
    validate_assign_inputs(medoids, dims);
    let mut assignment = Vec::with_capacity(points.rows());
    for p in 0..points.rows() {
        let row = points.row(p);
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for (i, (&m, di)) in medoids.iter().zip(dims).enumerate() {
            let dist = metric.eval_segmental(row, points.row(m), di);
            if dist < best_dist {
                best_dist = dist;
                best = i;
            }
        }
        assignment.push(best);
    }
    assignment
}

/// [`assign_points`] with monotone prefix pruning (see
/// [`crate::index`]): a candidate's evaluation stops as soon as its
/// running segmental prefix — a certified lower bound on the final
/// value — reaches the incumbent best distance, which already decides
/// the strict `<` comparison. Winners are **bit-identical** to
/// [`assign_points`]; `stats` counts the evaluations saved.
///
/// # Panics
///
/// Same contract as [`assign_points`].
pub fn assign_points_pruned(
    points: &Matrix,
    medoids: &[usize],
    dims: &[Vec<usize>],
    metric: DistanceKind,
    stats: &mut PruneStats,
) -> Vec<usize> {
    validate_assign_inputs(medoids, dims);
    // When every projection is tiny, evaluating is cheaper than
    // reasoning about abandoning (see `crate::index::NEAREST_MIN_DIMS`)
    // — run the plain path unchanged and count everything as verified.
    if dims.iter().all(|di| di.len() < NEAREST_MIN_DIMS) {
        stats.nearest_verified += (points.rows() * medoids.len()) as u64;
        return assign_points(points, medoids, dims, metric);
    }
    // Hoisted threshold halves: the per-candidate raw threshold is the
    // single multiply `tbase · lens[i]` (see `crate::index::raw_tbase`).
    let lens: Vec<f64> = dims
        .iter()
        .map(|di| raw_len_factor(metric, di.len()))
        .collect();
    // Adaptive gate: probe the first rows with abandonment enabled,
    // then keep it only when most reached evaluations abandon (see
    // `crate::index::PREFIX_KEEP_NUM`).
    let big_slots = dims
        .iter()
        .filter(|di| di.len() >= NEAREST_MIN_DIMS)
        .count() as u64;
    let probe_end = crate::index::PROBE_POINTS.min(points.rows());
    let base_pruned = stats.nearest_pruned;
    let mut assignment = Vec::with_capacity(points.rows());
    for p in 0..points.rows() {
        if p == probe_end {
            let abandoned = stats.nearest_pruned - base_pruned;
            let reached = (probe_end as u64) * big_slots;
            if abandoned * crate::index::PREFIX_KEEP_DEN < reached * crate::index::PREFIX_KEEP_NUM {
                // Abandonment is not paying for its branches: hand the
                // rest of the scan to the plain loop (bit-identical
                // winners either way).
                stats.nearest_verified += ((points.rows() - p) * medoids.len()) as u64;
                assignment.extend(crate::kernel::assign_block(
                    points,
                    metric,
                    medoids,
                    dims,
                    p,
                    points.rows(),
                ));
                return assignment;
            }
        }
        let row = points.row(p);
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        // raw_tbase(metric, ∞) = ∞ for every metric.
        let mut tbase = f64::INFINITY;
        for (i, ((&m, di), &lf)) in medoids.iter().zip(dims).zip(&lens).enumerate() {
            // Tiny projections are cheaper to evaluate than to reason
            // about abandoning (see `crate::index::NEAREST_MIN_DIMS`).
            let verdict = if di.len() < NEAREST_MIN_DIMS {
                Some(metric.eval_segmental(row, points.row(m), di))
            } else {
                segmental_bounded(metric, row, points.row(m), di, tbase * lf)
            };
            match verdict {
                Some(dist) => {
                    stats.nearest_verified += 1;
                    if dist < best_dist {
                        best_dist = dist;
                        best = i;
                        tbase = raw_tbase(metric, dist);
                    }
                }
                None => stats.nearest_pruned += 1,
            }
        }
        assignment.push(best);
    }
    assignment
}

/// Group an assignment vector into per-cluster member lists.
///
/// `assignment[p]` may be `None` for outliers (produced by the
/// refinement phase); those points appear in no cluster.
pub fn group_members(assignment: &[Option<usize>], k: usize) -> Vec<Vec<usize>> {
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (p, a) in assignment.iter().enumerate() {
        if let Some(i) = *a {
            clusters[i].push(p);
        }
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigns_to_nearest_projected_medoid() {
        // Medoid 0 = row 0 with dims {0}; medoid 1 = row 1 with dims {1}.
        let rows: Vec<[f64; 2]> = vec![
            [0.0, 0.0],   // medoid 0
            [50.0, 50.0], // medoid 1
            [1.0, 90.0],  // near medoid 0 on dim 0
            [90.0, 51.0], // near medoid 1 on dim 1
        ];
        let m = Matrix::from_rows(&rows, 2);
        let a = assign_points(&m, &[0, 1], &[vec![0], vec![1]], DistanceKind::Manhattan);
        assert_eq!(a, vec![0, 1, 0, 1]);
    }

    #[test]
    fn segmental_normalization_matters() {
        // Point p: distance 10 total over medoid 0's two dims (segmental
        // 5), distance 8 on medoid 1's single dim (segmental 8).
        // With *unnormalized* Manhattan it would pick medoid 1 (8 < 10);
        // segmental picks medoid 0.
        let rows: Vec<[f64; 3]> = vec![
            [0.0, 0.0, 0.0], // medoid 0, dims {0, 1}
            [0.0, 0.0, 0.0], // medoid 1, dims {2}
            [5.0, 5.0, 8.0], // the contested point
        ];
        let m = Matrix::from_rows(&rows, 3);
        let a = assign_points(&m, &[0, 1], &[vec![0, 1], vec![2]], DistanceKind::Manhattan);
        assert_eq!(a[2], 0);
    }

    #[test]
    fn ties_break_to_lower_index() {
        let rows: Vec<[f64; 1]> = vec![[0.0], [10.0], [5.0]];
        let m = Matrix::from_rows(&rows, 1);
        let a = assign_points(&m, &[0, 1], &[vec![0], vec![0]], DistanceKind::Manhattan);
        assert_eq!(a[2], 0);
    }

    #[test]
    fn medoids_assign_to_themselves() {
        let rows: Vec<[f64; 2]> = vec![[0.0, 0.0], [100.0, 100.0], [42.0, 0.0]];
        let m = Matrix::from_rows(&rows, 2);
        let a = assign_points(
            &m,
            &[0, 1],
            &[vec![0, 1], vec![0, 1]],
            DistanceKind::Manhattan,
        );
        assert_eq!(a[0], 0);
        assert_eq!(a[1], 1);
    }

    #[test]
    fn group_members_partitions() {
        let assignment = vec![Some(0), Some(1), None, Some(0)];
        let groups = group_members(&assignment, 2);
        assert_eq!(groups[0], vec![0, 3]);
        assert_eq!(groups[1], vec![1]);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 3, "outlier excluded");
    }

    /// Regression: an empty dimension set used to make its medoid tie
    /// at distance 0 with every point, collapsing the assignment to the
    /// lowest empty-set index. It is now rejected as API misuse.
    #[test]
    #[should_panic(expected = "empty dimension set")]
    fn empty_dimension_set_is_rejected() {
        let rows: Vec<[f64; 2]> = vec![[0.0, 0.0], [100.0, 100.0], [99.0, 99.0]];
        let m = Matrix::from_rows(&rows, 2);
        // Before the check, the point at (99, 99) — far from medoid 0 on
        // every real dimension — would land on cluster 0.
        let _ = assign_points(&m, &[0, 1], &[vec![], vec![0, 1]], DistanceKind::Manhattan);
    }

    /// The pruned variant enforces the same empty-dims contract.
    #[test]
    #[should_panic(expected = "empty dimension set")]
    fn pruned_assign_rejects_empty_dimension_set() {
        let m = Matrix::from_rows(&[[0.0], [1.0]], 1);
        let mut stats = PruneStats::default();
        let _ = assign_points_pruned(
            &m,
            &[0, 1],
            &[vec![0], vec![]],
            DistanceKind::Manhattan,
            &mut stats,
        );
    }

    /// The pruned variant returns bit-identical winners and actually
    /// skips work on inputs with a clear nearest medoid.
    #[test]
    fn pruned_assign_matches_exact_and_prunes() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for metric in [
            DistanceKind::Manhattan,
            DistanceKind::Euclidean,
            DistanceKind::Chebyshev,
        ] {
            let mut rng = StdRng::seed_from_u64(19);
            let data: Vec<f64> = (0..500 * 12)
                .map(|_| rng.random_range(0.0..100.0))
                .collect();
            let m = Matrix::from_vec(data, 500, 12);
            let medoids = vec![0usize, 200, 400];
            // Sets of >= NEAREST_MIN_DIMS dimensions, so the bounded
            // evaluation path engages.
            let dims: Vec<Vec<usize>> =
                vec![(0..10).collect(), (1..11).collect(), (2..12).collect()];
            let exact = assign_points(&m, &medoids, &dims, metric);
            let mut stats = PruneStats::default();
            let pruned = assign_points_pruned(&m, &medoids, &dims, metric, &mut stats);
            assert_eq!(exact, pruned, "{metric:?}");
            assert!(stats.nearest_pruned > 0, "{metric:?}: pruning inert");
            assert_eq!(
                stats.nearest_pruned + stats.nearest_verified,
                (m.rows() * medoids.len()) as u64,
                "{metric:?}: every candidate accounted for"
            );
        }
    }
}
