//! AssignPoints (Figure 5): one pass assigning every point to the
//! medoid with the smallest Manhattan segmental distance relative to
//! that medoid's dimension set.

use proclus_math::{DistanceKind, Matrix};

/// Assign every point to its closest medoid under the per-medoid
/// segmental distances. Returns `assignment[p] = cluster index`.
///
/// Ties go to the lower cluster index (deterministic). Medoid points
/// assign to themselves (distance 0 to their own medoid; a different
/// medoid could only tie, not win).
pub fn assign_points(
    points: &Matrix,
    medoids: &[usize],
    dims: &[Vec<usize>],
    metric: DistanceKind,
) -> Vec<usize> {
    assert_eq!(medoids.len(), dims.len());
    assert!(!medoids.is_empty());
    let mut assignment = Vec::with_capacity(points.rows());
    for p in 0..points.rows() {
        let row = points.row(p);
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for (i, (&m, di)) in medoids.iter().zip(dims).enumerate() {
            let dist = metric.eval_segmental(row, points.row(m), di);
            if dist < best_dist {
                best_dist = dist;
                best = i;
            }
        }
        assignment.push(best);
    }
    assignment
}

/// Group an assignment vector into per-cluster member lists.
///
/// `assignment[p]` may be `None` for outliers (produced by the
/// refinement phase); those points appear in no cluster.
pub fn group_members(assignment: &[Option<usize>], k: usize) -> Vec<Vec<usize>> {
    let mut clusters: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (p, a) in assignment.iter().enumerate() {
        if let Some(i) = *a {
            clusters[i].push(p);
        }
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assigns_to_nearest_projected_medoid() {
        // Medoid 0 = row 0 with dims {0}; medoid 1 = row 1 with dims {1}.
        let rows: Vec<[f64; 2]> = vec![
            [0.0, 0.0],   // medoid 0
            [50.0, 50.0], // medoid 1
            [1.0, 90.0],  // near medoid 0 on dim 0
            [90.0, 51.0], // near medoid 1 on dim 1
        ];
        let m = Matrix::from_rows(&rows, 2);
        let a = assign_points(&m, &[0, 1], &[vec![0], vec![1]], DistanceKind::Manhattan);
        assert_eq!(a, vec![0, 1, 0, 1]);
    }

    #[test]
    fn segmental_normalization_matters() {
        // Point p: distance 10 total over medoid 0's two dims (segmental
        // 5), distance 8 on medoid 1's single dim (segmental 8).
        // With *unnormalized* Manhattan it would pick medoid 1 (8 < 10);
        // segmental picks medoid 0.
        let rows: Vec<[f64; 3]> = vec![
            [0.0, 0.0, 0.0], // medoid 0, dims {0, 1}
            [0.0, 0.0, 0.0], // medoid 1, dims {2}
            [5.0, 5.0, 8.0], // the contested point
        ];
        let m = Matrix::from_rows(&rows, 3);
        let a = assign_points(&m, &[0, 1], &[vec![0, 1], vec![2]], DistanceKind::Manhattan);
        assert_eq!(a[2], 0);
    }

    #[test]
    fn ties_break_to_lower_index() {
        let rows: Vec<[f64; 1]> = vec![[0.0], [10.0], [5.0]];
        let m = Matrix::from_rows(&rows, 1);
        let a = assign_points(&m, &[0, 1], &[vec![0], vec![0]], DistanceKind::Manhattan);
        assert_eq!(a[2], 0);
    }

    #[test]
    fn medoids_assign_to_themselves() {
        let rows: Vec<[f64; 2]> = vec![[0.0, 0.0], [100.0, 100.0], [42.0, 0.0]];
        let m = Matrix::from_rows(&rows, 2);
        let a = assign_points(
            &m,
            &[0, 1],
            &[vec![0, 1], vec![0, 1]],
            DistanceKind::Manhattan,
        );
        assert_eq!(a[0], 0);
        assert_eq!(a[1], 1);
    }

    #[test]
    fn group_members_partitions() {
        let assignment = vec![Some(0), Some(1), None, Some(0)];
        let groups = group_members(&assignment, 2);
        assert_eq!(groups[0], vec![0, 3]);
        assert_eq!(groups[1], vec![1]);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 3, "outlier excluded");
    }
}
