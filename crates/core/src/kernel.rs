//! Block-level compute kernels for the O(N·k·d) passes of a
//! hill-climbing round, shared by the serial path and the worker pool
//! ([`crate::pool`]).
//!
//! # The fused pass
//!
//! A round of the iterative phase historically made two sweeps over the
//! data: one to test every point against every medoid's locality radius
//! (full-space segmental distance) and one to accumulate the
//! per-dimension average distances `Xᵢⱼ` over each locality. Both need
//! the same `|p_j − m_j|` values, so [`fused_block`] computes them once
//! per (point, medoid) pair: the absolute differences fill a scratch
//! buffer, the locality test folds them into the segmental distance,
//! and — when the point is inside the locality — the very same buffer
//! is added into the `Xᵢⱼ` accumulator. One O(N·k·d) sweep instead of
//! two.
//!
//! # Determinism
//!
//! All kernels operate on fixed-size row blocks of [`BLOCK`] points.
//! A block's partial result depends only on the block's rows, never on
//! which thread ran it, and partials are merged on the coordinating
//! thread in ascending block order. Floating-point accumulation order
//! is therefore *canonical*: every thread count (including the serial
//! path, which runs the identical per-block code) produces bit-identical
//! localities, `X` sums, dimension sets, and assignments.
//!
//! The segmental distances computed from the scratch buffer are
//! bit-identical to [`DistanceKind::eval_segmental`] over the full
//! dimension list: the summation order is the same, and for the
//! Euclidean kind `|x|·|x|` equals `x·x` bitwise (taking the absolute
//! value only clears the sign bit).

use proclus_math::{DistanceKind, Matrix};

/// Rows per work block. Large enough that per-block dispatch overhead
/// vanishes, small enough that a round over 100k points yields ~100
/// blocks for load balancing.
pub const BLOCK: usize = 1024;

/// Contiguous `(start, end)` row ranges of at most [`BLOCK`] rows
/// covering `0..n`. This tiling is *fixed* for a given `n` — it defines
/// the canonical accumulation grouping and must not depend on the
/// thread count.
pub fn blocks(n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(n.div_ceil(BLOCK));
    let mut lo = 0;
    while lo < n {
        let hi = (lo + BLOCK).min(n);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

/// Partial result of the fused locality + `X` pass over one block.
#[derive(Clone, Debug, PartialEq)]
pub struct FusedPartial {
    /// Per-medoid locality members found in this block (ascending).
    pub locs: Vec<Vec<usize>>,
    /// Per-medoid, per-dimension sums of `|p_j − m_j|` over this
    /// block's locality members.
    pub xsums: Vec<Vec<f64>>,
}

/// Fold a scratch buffer of absolute per-dimension differences into the
/// full-space segmental distance, bit-identical to
/// `metric.eval_segmental(a, b, &[0, 1, …, d-1])`.
#[inline]
fn segmental_from_diffs(metric: DistanceKind, diffs: &[f64]) -> f64 {
    match metric {
        DistanceKind::Manhattan => diffs.iter().sum::<f64>() / diffs.len() as f64,
        DistanceKind::Euclidean => {
            let sum: f64 = diffs.iter().map(|&v| v * v).sum();
            (sum / diffs.len() as f64).sqrt()
        }
        DistanceKind::Chebyshev => diffs.iter().copied().fold(0.0, f64::max),
    }
}

/// The fused pass over rows `lo..hi`: locality membership for every
/// (point, medoid) pair plus the `Xᵢⱼ` partial sums over the members,
/// from a single computation of the `|p_j − m_j|` differences.
pub fn fused_block(
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    deltas: &[f64],
    lo: usize,
    hi: usize,
) -> FusedPartial {
    let d = points.cols();
    let k = medoids.len();
    let mut locs: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut xsums = vec![vec![0.0; d]; k];
    let mut diffs = vec![0.0; d];
    for p in lo..hi {
        let prow = points.row(p);
        for (i, &m) in medoids.iter().enumerate() {
            let mrow = points.row(m);
            for j in 0..d {
                diffs[j] = (prow[j] - mrow[j]).abs();
            }
            if segmental_from_diffs(metric, &diffs) <= deltas[i] {
                locs[i].push(p);
                let xi = &mut xsums[i];
                for j in 0..d {
                    xi[j] += diffs[j];
                }
            }
        }
    }
    FusedPartial { locs, xsums }
}

/// Merge fused partials (given in ascending block order) into the final
/// localities and the `X` averages (`Xᵢⱼ` = mean over locality `i` of
/// `|p_j − m_j|`).
///
/// An empty locality — only reachable when a medoid's coordinates are
/// non-finite, since a finite medoid is always within `δᵢ ≥ 0` of
/// itself — falls back to the singleton `Lᵢ = {mᵢ}` with an all-zero
/// `X` row (`|m_j − m_j| = 0` in exact arithmetic; pinning the row
/// avoids poisoning FindDimensions with NaN differences). The same
/// fallback lives in [`crate::locality::localities`], so the fused and
/// legacy paths stay identical.
pub fn merge_fused(
    partials: Vec<FusedPartial>,
    medoids: &[usize],
    d: usize,
) -> (Vec<Vec<usize>>, Vec<Vec<f64>>) {
    let k = medoids.len();
    let mut locs: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut x = vec![vec![0.0; d]; k];
    for mut part in partials {
        for (i, local) in part.locs.iter_mut().enumerate() {
            locs[i].append(local);
        }
        for (xi, pi) in x.iter_mut().zip(&part.xsums) {
            for (a, b) in xi.iter_mut().zip(pi) {
                *a += b;
            }
        }
    }
    for ((xi, li), &m) in x.iter_mut().zip(locs.iter_mut()).zip(medoids) {
        if li.is_empty() {
            li.push(m);
            for v in xi.iter_mut() {
                *v = 0.0;
            }
        } else {
            let inv = 1.0 / li.len() as f64;
            for v in xi.iter_mut() {
                *v *= inv;
            }
        }
    }
    (locs, x)
}

/// Assignment over rows `lo..hi`: each point goes to the medoid with the
/// smallest segmental distance under that medoid's dimension set, ties
/// to the lower index — bit-identical to
/// [`crate::assign::assign_points`] restricted to the block.
pub fn assign_block(
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    dims: &[Vec<usize>],
    lo: usize,
    hi: usize,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(hi - lo);
    for p in lo..hi {
        let row = points.row(p);
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for (i, (&m, di)) in medoids.iter().zip(dims).enumerate() {
            let dist = metric.eval_segmental(row, points.row(m), di);
            if dist < best_dist {
                best_dist = dist;
                best = i;
            }
        }
        out.push(best);
    }
    out
}

/// Per-slot segmental-distance columns over rows `lo..hi`:
/// `out[s][p − lo] = metric.eval_segmental(points.row(p),
/// points.row(medoids[s]), &dims[s])`.
///
/// Each value is exactly the scalar the assignment kernels compare —
/// there is no accumulation across rows — so a column computed here and
/// cached across rounds is bit-identical to recomputing the distance
/// inside [`assign_block`].
pub fn columns_block(
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    dims: &[Vec<usize>],
    lo: usize,
    hi: usize,
) -> Vec<Vec<f64>> {
    let mut out: Vec<Vec<f64>> = vec![Vec::with_capacity(hi - lo); medoids.len()];
    for p in lo..hi {
        let row = points.row(p);
        for ((&m, di), col) in medoids.iter().zip(dims).zip(out.iter_mut()) {
            col.push(metric.eval_segmental(row, points.row(m), di));
        }
    }
    out
}

/// Assignment from per-slot distance columns: for every row, the slot
/// with the smallest distance, ties (and the all-NaN degenerate case)
/// to the lower slot index.
///
/// Iterates slots in ascending order with a strict `<` comparison —
/// exactly the loop of [`assign_block`]/[`crate::assign::assign_points`]
/// — so feeding it columns produced by [`columns_block`] (cached or
/// fresh) reproduces the direct assignment bit for bit, including the
/// NaN behavior (a NaN distance never wins; a row whose every distance
/// is NaN lands on slot 0).
pub fn argmin_columns(columns: &[&[f64]], n: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(n);
    for p in 0..n {
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for (i, col) in columns.iter().enumerate() {
            let dist = col[p];
            if dist < best_dist {
                best_dist = dist;
                best = i;
            }
        }
        out.push(best);
    }
    out
}

/// Partial result of the fused assign + cluster-`X` pass.
#[derive(Clone, Debug, PartialEq)]
pub struct AssignXPartial {
    /// Winning medoid per row of the block.
    pub assignment: Vec<usize>,
    /// Per-cluster, per-dimension sums of `|p_j − m_j|` to the winning
    /// medoid, over this block's rows.
    pub xsums: Vec<Vec<f64>>,
}

/// Assignment fused with the cluster-based `X` accumulation the inner
/// refinement loop needs: once a point's winning medoid is known, its
/// full-dimensional `|p_j − m_j|` differences are added to that
/// cluster's `X` sums in the same sweep, saving the separate O(N·d)
/// pass over the freshly formed clusters.
pub fn assign_x_block(
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    dims: &[Vec<usize>],
    lo: usize,
    hi: usize,
) -> AssignXPartial {
    let d = points.cols();
    let mut xsums = vec![vec![0.0; d]; medoids.len()];
    let mut assignment = Vec::with_capacity(hi - lo);
    for p in lo..hi {
        let row = points.row(p);
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for (i, (&m, di)) in medoids.iter().zip(dims).enumerate() {
            let dist = metric.eval_segmental(row, points.row(m), di);
            if dist < best_dist {
                best_dist = dist;
                best = i;
            }
        }
        assignment.push(best);
        let mrow = points.row(medoids[best]);
        let xi = &mut xsums[best];
        for j in 0..d {
            xi[j] += (row[j] - mrow[j]).abs();
        }
    }
    AssignXPartial { assignment, xsums }
}

/// Merge assign-`X` partials (ascending block order) into the flat
/// assignment and the per-cluster `X` averages.
pub fn merge_assign_x(
    partials: Vec<AssignXPartial>,
    k: usize,
    d: usize,
) -> (Vec<usize>, Vec<Vec<f64>>) {
    let mut flat = Vec::new();
    let mut x = vec![vec![0.0; d]; k];
    for mut part in partials {
        flat.append(&mut part.assignment);
        for (xi, pi) in x.iter_mut().zip(&part.xsums) {
            for (a, b) in xi.iter_mut().zip(pi) {
                *a += b;
            }
        }
    }
    let mut counts = vec![0usize; k];
    for &a in &flat {
        counts[a] += 1;
    }
    for (xi, &c) in x.iter_mut().zip(&counts) {
        if c > 0 {
            let inv = 1.0 / c as f64;
            for v in xi.iter_mut() {
                *v *= inv;
            }
        }
    }
    (flat, x)
}

/// Cluster-based `X` partial sums over rows `lo..hi` for a fixed
/// assignment (`None` entries — outliers — contribute to no cluster).
/// Used by the refinement phase, where the reference sets are the final
/// iterative clusters rather than a just-computed assignment.
pub fn cluster_x_block(
    points: &Matrix,
    medoids: &[usize],
    assignment: &[Option<usize>],
    lo: usize,
    hi: usize,
) -> Vec<Vec<f64>> {
    let d = points.cols();
    let mut xsums = vec![vec![0.0; d]; medoids.len()];
    for (p, a) in assignment.iter().enumerate().take(hi).skip(lo) {
        let Some(i) = *a else { continue };
        let row = points.row(p);
        let mrow = points.row(medoids[i]);
        let xi = &mut xsums[i];
        for j in 0..d {
            xi[j] += (row[j] - mrow[j]).abs();
        }
    }
    xsums
}

/// Merge cluster-`X` partials into averages, dividing by the reference
/// set sizes (`counts[i]` = number of points assigned to cluster `i`).
pub fn merge_cluster_x(partials: Vec<Vec<Vec<f64>>>, counts: &[usize], d: usize) -> Vec<Vec<f64>> {
    let mut x = vec![vec![0.0; d]; counts.len()];
    for part in partials {
        for (xi, pi) in x.iter_mut().zip(&part) {
            for (a, b) in xi.iter_mut().zip(pi) {
                *a += b;
            }
        }
    }
    for (xi, &c) in x.iter_mut().zip(counts) {
        if c > 0 {
            let inv = 1.0 / c as f64;
            for v in xi.iter_mut() {
                *v *= inv;
            }
        }
    }
    x
}

/// Refinement assignment over rows `lo..hi`: nearest medoid under the
/// per-medoid dimension sets, `None` when the point lies inside no
/// medoid's sphere of influence — bit-identical to the loop in
/// [`crate::refine::refine_opt`] restricted to the block.
pub fn refine_assign_block(
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    dims: &[Vec<usize>],
    spheres: &[f64],
    lo: usize,
    hi: usize,
) -> Vec<Option<usize>> {
    let mut out = Vec::with_capacity(hi - lo);
    for p in lo..hi {
        let row = points.row(p);
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        let mut inside_any = false;
        for (i, (&m, di)) in medoids.iter().zip(dims).enumerate() {
            let dist = metric.eval_segmental(row, points.row(m), di);
            if dist <= spheres[i] {
                inside_any = true;
            }
            if dist < best_dist {
                best_dist = dist;
                best = i;
            }
        }
        out.push(inside_any.then_some(best));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locality::{localities, medoid_deltas};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * d).map(|_| rng.random_range(0.0..100.0)).collect();
        Matrix::from_vec(data, n, d)
    }

    #[test]
    fn blocks_tile_exactly() {
        for n in [0, 1, BLOCK - 1, BLOCK, BLOCK + 1, 5 * BLOCK + 17] {
            let bs = blocks(n);
            if n == 0 {
                assert!(bs.is_empty());
                continue;
            }
            assert_eq!(bs[0].0, 0);
            assert_eq!(bs.last().unwrap().1, n);
            for w in bs.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
            assert!(bs.iter().all(|&(a, b)| b > a && b - a <= BLOCK));
        }
    }

    #[test]
    fn fused_localities_match_legacy_exactly() {
        for metric in [
            DistanceKind::Manhattan,
            DistanceKind::Euclidean,
            DistanceKind::Chebyshev,
        ] {
            let points = random_points(700, 6, 11);
            let medoids = vec![3usize, 99, 402];
            let deltas = medoid_deltas(&points, &medoids, metric);
            let legacy = localities(&points, &medoids, &deltas, metric);
            let partials: Vec<FusedPartial> = blocks(points.rows())
                .into_iter()
                .map(|(lo, hi)| fused_block(&points, metric, &medoids, &deltas, lo, hi))
                .collect();
            let (locs, _) = merge_fused(partials, &medoids, points.cols());
            assert_eq!(locs, legacy, "{metric:?}");
        }
    }

    #[test]
    fn fused_x_matches_direct_blocked_sum() {
        // The X averages must equal the blocked accumulation over the
        // merged localities (the canonical order), independent of how
        // rows are grouped into fused calls.
        let points = random_points(300, 4, 5);
        let medoids = vec![0usize, 150];
        let metric = DistanceKind::Manhattan;
        let deltas = medoid_deltas(&points, &medoids, metric);
        let one_block = fused_block(&points, metric, &medoids, &deltas, 0, 300);
        let (locs_a, x_a) = merge_fused(vec![one_block], &medoids, 4);
        let partials: Vec<FusedPartial> = [(0, 77), (77, 200), (200, 300)]
            .into_iter()
            .map(|(lo, hi)| fused_block(&points, metric, &medoids, &deltas, lo, hi))
            .collect();
        let (locs_b, x_b) = merge_fused(partials, &medoids, 4);
        assert_eq!(locs_a, locs_b);
        // Note: different groupings may differ in the last ulp of the
        // sums; the canonical tiling is fixed, so production paths never
        // regroup. Here the values should still be essentially equal.
        for (ra, rb) in x_a.iter().zip(&x_b) {
            for (a, b) in ra.iter().zip(rb) {
                assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0));
            }
        }
    }

    #[test]
    fn assign_block_matches_assign_points() {
        let points = random_points(500, 5, 9);
        let medoids = vec![0usize, 100, 300];
        let dims = vec![vec![0, 1], vec![2, 3], vec![1, 4]];
        let metric = DistanceKind::Manhattan;
        let legacy = crate::assign::assign_points(&points, &medoids, &dims, metric);
        let flat: Vec<usize> = blocks(points.rows())
            .into_iter()
            .flat_map(|(lo, hi)| assign_block(&points, metric, &medoids, &dims, lo, hi))
            .collect();
        assert_eq!(flat, legacy);
    }

    #[test]
    fn assign_x_assignment_matches_plain_assign() {
        let points = random_points(400, 5, 13);
        let medoids = vec![7usize, 200];
        let dims = vec![vec![0, 2], vec![1, 3]];
        let metric = DistanceKind::Manhattan;
        let partials: Vec<AssignXPartial> = blocks(points.rows())
            .into_iter()
            .map(|(lo, hi)| assign_x_block(&points, metric, &medoids, &dims, lo, hi))
            .collect();
        let (flat, x) = merge_assign_x(partials, 2, 5);
        assert_eq!(
            flat,
            crate::assign::assign_points(&points, &medoids, &dims, metric)
        );
        // X must equal the cluster-based average_dimension_distances up
        // to accumulation-order rounding.
        let opt: Vec<Option<usize>> = flat.iter().map(|&a| Some(a)).collect();
        let clusters = crate::assign::group_members(&opt, 2);
        let legacy = crate::dims::average_dimension_distances(&points, &medoids, &clusters);
        for (ra, rb) in x.iter().zip(&legacy) {
            for (a, b) in ra.iter().zip(rb) {
                assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn refine_assign_block_marks_outliers() {
        let rows: Vec<[f64; 2]> = vec![[0.0, 0.0], [10.0, 10.0], [500.0, 500.0]];
        let points = Matrix::from_rows(&rows, 2);
        let medoids = vec![0usize, 1];
        let dims = vec![vec![0, 1], vec![0, 1]];
        let metric = DistanceKind::Manhattan;
        let spheres = crate::refine::spheres_of_influence(&points, &medoids, &dims, metric);
        let out = refine_assign_block(&points, metric, &medoids, &dims, &spheres, 0, 3);
        assert_eq!(out, vec![Some(0), Some(1), None]);
    }

    #[test]
    fn columns_match_direct_evaluation_and_argmin_matches_assign() {
        for metric in [
            DistanceKind::Manhattan,
            DistanceKind::Euclidean,
            DistanceKind::Chebyshev,
        ] {
            let points = random_points(600, 5, 23);
            let medoids = vec![2usize, 170, 444];
            let dims = vec![vec![0, 1], vec![2, 3], vec![1, 4]];
            let cols: Vec<Vec<f64>> = blocks(points.rows()).into_iter().fold(
                vec![Vec::new(); medoids.len()],
                |mut acc, (lo, hi)| {
                    for (full, part) in acc
                        .iter_mut()
                        .zip(columns_block(&points, metric, &medoids, &dims, lo, hi))
                    {
                        full.extend(part);
                    }
                    acc
                },
            );
            for (s, (&m, di)) in medoids.iter().zip(&dims).enumerate() {
                for (p, &got) in cols[s].iter().enumerate() {
                    let direct = metric.eval_segmental(points.row(p), points.row(m), di);
                    assert_eq!(got.to_bits(), direct.to_bits(), "{metric:?} {s} {p}");
                }
            }
            let refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
            let via_cols = argmin_columns(&refs, points.rows());
            let direct = crate::assign::assign_points(&points, &medoids, &dims, metric);
            assert_eq!(via_cols, direct, "{metric:?}");
        }
    }

    #[test]
    fn argmin_columns_nan_rows_fall_to_slot_zero() {
        let a = [f64::NAN, 1.0, f64::NAN];
        let b = [f64::NAN, 2.0, 0.5];
        let out = argmin_columns(&[&a, &b], 3);
        // Row 0: all NaN -> slot 0. Row 1: 1.0 < 2.0 -> slot 0.
        // Row 2: NaN never beats 0.5 -> slot 1.
        assert_eq!(out, vec![0, 0, 1]);
    }

    /// A medoid with non-finite coordinates has a NaN distance to every
    /// point (including itself), so its locality would come out empty;
    /// the merge falls back to the singleton {mᵢ} with a zero `X` row.
    #[test]
    fn merge_fused_empty_locality_falls_back_to_medoid_singleton() {
        let rows: Vec<[f64; 2]> = vec![[0.0, 0.0], [f64::NAN, 1.0], [2.0, 2.0]];
        let points = Matrix::from_rows(&rows, 2);
        let medoids = vec![0usize, 1];
        let metric = DistanceKind::Manhattan;
        let deltas = crate::locality::medoid_deltas(&points, &medoids, metric);
        let partials = vec![fused_block(&points, metric, &medoids, &deltas, 0, 3)];
        let (locs, x) = merge_fused(partials, &medoids, 2);
        assert_eq!(locs[1], vec![1], "empty locality becomes {{medoid}}");
        assert_eq!(x[1], vec![0.0, 0.0], "fallback X row is pinned to zero");
        assert!(!locs[0].is_empty());
    }

    #[test]
    fn cluster_x_skips_outliers() {
        let rows: Vec<[f64; 2]> = vec![[0.0, 0.0], [1.0, 3.0], [900.0, 900.0]];
        let points = Matrix::from_rows(&rows, 2);
        let assignment = vec![Some(0), Some(0), None];
        let partial = cluster_x_block(&points, &[0], &assignment, 0, 3);
        let x = merge_cluster_x(vec![partial], &[2], 2);
        // Members {0, 1}: mean |diff| = (0 + 1)/2 and (0 + 3)/2.
        assert_eq!(x, vec![vec![0.5, 1.5]]);
    }
}
