//! Block-level compute kernels for the O(N·k·d) passes of a
//! hill-climbing round, shared by the serial path and the worker pool
//! ([`crate::pool`]).
//!
//! # The fused pass
//!
//! A round of the iterative phase historically made two sweeps over the
//! data: one to test every point against every medoid's locality radius
//! (full-space segmental distance) and one to accumulate the
//! per-dimension average distances `Xᵢⱼ` over each locality. Both need
//! the same `|p_j − m_j|` values, so [`fused_block`] computes them once
//! per (point, medoid) pair: the absolute differences fill a scratch
//! buffer, the locality test folds them into the segmental distance,
//! and — when the point is inside the locality — the very same buffer
//! is added into the `Xᵢⱼ` accumulator. One O(N·k·d) sweep instead of
//! two.
//!
//! # Determinism
//!
//! All kernels operate on fixed-size row blocks of [`BLOCK`] points.
//! A block's partial result depends only on the block's rows, never on
//! which thread ran it, and partials are merged on the coordinating
//! thread in ascending block order. Floating-point accumulation order
//! is therefore *canonical*: every thread count (including the serial
//! path, which runs the identical per-block code) produces bit-identical
//! localities, `X` sums, dimension sets, and assignments.
//!
//! The segmental distances computed from the scratch buffer are
//! bit-identical to [`DistanceKind::eval_segmental`] over the full
//! dimension list: the summation order is the same, and for the
//! Euclidean kind `|x|·|x|` equals `x·x` bitwise (taking the absolute
//! value only clears the sign bit).
//!
//! # Pruned variants
//!
//! Each assignment-style kernel has a `*_pruned` twin that consults the
//! neighbor index ([`crate::index`]) to skip exact evaluations whose
//! outcome is already decided — a certified lower bound above the
//! locality radius (range queries) or a monotone prefix value at or
//! above the current best (nearest-medoid queries). Pruning never
//! changes which evaluations *matter*: a pruned candidate is provably a
//! non-member / non-winner, every surviving evaluation runs the exact
//! code in the exact order, and the `X` accumulations add exactly the
//! member rows the unpruned kernel would add. The pruned kernels are
//! therefore bit-identical to their twins (asserted by the agreement
//! tests below), and the per-block [`PruneStats`] they fill count work
//! saved, not results changed.

use crate::index::{
    raw_gt_threshold, raw_len_factor, raw_tbase, segmental_bounded, FusedPruneCtx, PruneStats,
    NEAREST_MIN_DIMS, PREFIX_KEEP_DEN, PREFIX_KEEP_NUM, PROBE_DISABLE_SHIFT, PROBE_POINTS,
    PRUNE_CHUNK,
};
use crate::layout::{FastMathStats, TileView, FAST_MATH_TOLERANCE_SCALE};
use proclus_math::{DistanceKind, Matrix};

/// Rows per work block. Large enough that per-block dispatch overhead
/// vanishes, small enough that a round over 100k points yields ~100
/// blocks for load balancing.
pub const BLOCK: usize = 1024;

/// Contiguous `(start, end)` row ranges of at most [`BLOCK`] rows
/// covering `0..n`. This tiling is *fixed* for a given `n` — it defines
/// the canonical accumulation grouping and must not depend on the
/// thread count.
pub fn blocks(n: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(n.div_ceil(BLOCK));
    let mut lo = 0;
    while lo < n {
        let hi = (lo + BLOCK).min(n);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

/// Partial result of the fused locality + `X` pass over one block.
#[derive(Clone, Debug, PartialEq)]
pub struct FusedPartial {
    /// Per-medoid locality members found in this block (ascending).
    pub locs: Vec<Vec<usize>>,
    /// Per-medoid, per-dimension sums of `|p_j − m_j|` over this
    /// block's locality members.
    pub xsums: Vec<Vec<f64>>,
}

/// Fold a scratch buffer of absolute per-dimension differences into the
/// full-space segmental distance, bit-identical to
/// `metric.eval_segmental(a, b, &[0, 1, …, d-1])`.
#[inline]
fn segmental_from_diffs(metric: DistanceKind, diffs: &[f64]) -> f64 {
    match metric {
        DistanceKind::Manhattan => diffs.iter().sum::<f64>() / diffs.len() as f64,
        DistanceKind::Euclidean => {
            let sum: f64 = diffs.iter().map(|&v| v * v).sum();
            (sum / diffs.len() as f64).sqrt()
        }
        DistanceKind::Chebyshev => diffs.iter().copied().fold(0.0, f64::max),
    }
}

/// The fused pass over rows `lo..hi`: locality membership for every
/// (point, medoid) pair plus the `Xᵢⱼ` partial sums over the members,
/// from a single computation of the `|p_j − m_j|` differences.
pub fn fused_block(
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    deltas: &[f64],
    lo: usize,
    hi: usize,
) -> FusedPartial {
    let d = points.cols();
    let k = medoids.len();
    let mut locs: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut xsums = vec![vec![0.0; d]; k];
    let mut diffs = vec![0.0; d];
    fused_range(
        points, metric, medoids, deltas, lo, hi, &mut locs, &mut xsums, &mut diffs,
    );
    FusedPartial { locs, xsums }
}

/// The plain fused scan over rows `lo..hi`, continuing accumulation
/// into existing `locs`/`xsums`. Kept separate so the pruned kernel can
/// hand the post-probe tail of a block to the exact plain loop (same
/// codegen, same summation order) when its adaptive gates turn the
/// pruning machinery off.
#[allow(clippy::too_many_arguments)]
fn fused_range(
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    deltas: &[f64],
    lo: usize,
    hi: usize,
    locs: &mut [Vec<usize>],
    xsums: &mut [Vec<f64>],
    diffs: &mut [f64],
) {
    let d = points.cols();
    for p in lo..hi {
        let prow = points.row(p);
        for (i, &m) in medoids.iter().enumerate() {
            let mrow = points.row(m);
            for j in 0..d {
                diffs[j] = (prow[j] - mrow[j]).abs();
            }
            if segmental_from_diffs(metric, diffs) <= deltas[i] {
                locs[i].push(p);
                let xi = &mut xsums[i];
                for j in 0..d {
                    xi[j] += diffs[j];
                }
            }
        }
    }
}

/// Merge fused partials (given in ascending block order) into the final
/// localities and the `X` averages (`Xᵢⱼ` = mean over locality `i` of
/// `|p_j − m_j|`).
///
/// An empty locality — only reachable when a medoid's coordinates are
/// non-finite, since a finite medoid is always within `δᵢ ≥ 0` of
/// itself — falls back to the singleton `Lᵢ = {mᵢ}` with an all-zero
/// `X` row (`|m_j − m_j| = 0` in exact arithmetic; pinning the row
/// avoids poisoning FindDimensions with NaN differences). The same
/// fallback lives in [`crate::locality::localities`], so the fused and
/// legacy paths stay identical.
pub fn merge_fused(
    partials: Vec<FusedPartial>,
    medoids: &[usize],
    d: usize,
) -> (Vec<Vec<usize>>, Vec<Vec<f64>>) {
    let k = medoids.len();
    let mut locs: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut x = vec![vec![0.0; d]; k];
    for mut part in partials {
        for (i, local) in part.locs.iter_mut().enumerate() {
            locs[i].append(local);
        }
        for (xi, pi) in x.iter_mut().zip(&part.xsums) {
            for (a, b) in xi.iter_mut().zip(pi) {
                *a += b;
            }
        }
    }
    for ((xi, li), &m) in x.iter_mut().zip(locs.iter_mut()).zip(medoids) {
        if li.is_empty() {
            li.push(m);
            for v in xi.iter_mut() {
                *v = 0.0;
            }
        } else {
            let inv = 1.0 / li.len() as f64;
            for v in xi.iter_mut() {
                *v *= inv;
            }
        }
    }
    (locs, x)
}

/// Assignment over rows `lo..hi`: each point goes to the medoid with the
/// smallest segmental distance under that medoid's dimension set, ties
/// to the lower index — bit-identical to
/// [`crate::assign::assign_points`] restricted to the block.
pub fn assign_block(
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    dims: &[Vec<usize>],
    lo: usize,
    hi: usize,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(hi - lo);
    for p in lo..hi {
        let row = points.row(p);
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for (i, (&m, di)) in medoids.iter().zip(dims).enumerate() {
            let dist = metric.eval_segmental(row, points.row(m), di);
            if dist < best_dist {
                best_dist = dist;
                best = i;
            }
        }
        out.push(best);
    }
    out
}

/// Per-slot segmental-distance columns over rows `lo..hi`:
/// `out[s][p − lo] = metric.eval_segmental(points.row(p),
/// points.row(medoids[s]), &dims[s])`.
///
/// Each value is exactly the scalar the assignment kernels compare —
/// there is no accumulation across rows — so a column computed here and
/// cached across rounds is bit-identical to recomputing the distance
/// inside [`assign_block`].
pub fn columns_block(
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    dims: &[Vec<usize>],
    lo: usize,
    hi: usize,
) -> Vec<Vec<f64>> {
    let mut out: Vec<Vec<f64>> = vec![Vec::with_capacity(hi - lo); medoids.len()];
    for p in lo..hi {
        let row = points.row(p);
        for ((&m, di), col) in medoids.iter().zip(dims).zip(out.iter_mut()) {
            col.push(metric.eval_segmental(row, points.row(m), di));
        }
    }
    out
}

/// Assignment from per-slot distance columns: for every row, the slot
/// with the smallest distance, ties (and the all-NaN degenerate case)
/// to the lower slot index.
///
/// Iterates slots in ascending order with a strict `<` comparison —
/// exactly the loop of [`assign_block`]/[`crate::assign::assign_points`]
/// — so feeding it columns produced by [`columns_block`] (cached or
/// fresh) reproduces the direct assignment bit for bit, including the
/// NaN behavior (a NaN distance never wins; a row whose every distance
/// is NaN lands on slot 0).
pub fn argmin_columns(columns: &[&[f64]], n: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(n);
    for p in 0..n {
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for (i, col) in columns.iter().enumerate() {
            let dist = col[p];
            if dist < best_dist {
                best_dist = dist;
                best = i;
            }
        }
        out.push(best);
    }
    out
}

/// Partial result of the fused assign + cluster-`X` pass.
#[derive(Clone, Debug, PartialEq)]
pub struct AssignXPartial {
    /// Winning medoid per row of the block.
    pub assignment: Vec<usize>,
    /// Per-cluster, per-dimension sums of `|p_j − m_j|` to the winning
    /// medoid, over this block's rows.
    pub xsums: Vec<Vec<f64>>,
}

/// Assignment fused with the cluster-based `X` accumulation the inner
/// refinement loop needs: once a point's winning medoid is known, its
/// full-dimensional `|p_j − m_j|` differences are added to that
/// cluster's `X` sums in the same sweep, saving the separate O(N·d)
/// pass over the freshly formed clusters.
pub fn assign_x_block(
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    dims: &[Vec<usize>],
    lo: usize,
    hi: usize,
) -> AssignXPartial {
    let d = points.cols();
    let mut xsums = vec![vec![0.0; d]; medoids.len()];
    let mut assignment = Vec::with_capacity(hi - lo);
    assign_x_range(
        points,
        metric,
        medoids,
        dims,
        lo,
        hi,
        &mut xsums,
        &mut assignment,
    );
    AssignXPartial { assignment, xsums }
}

/// The plain assign + `X` scan over rows `lo..hi`, continuing
/// accumulation into existing `xsums`/`assignment` — the tail loop the
/// pruned kernel falls back to when its adaptive gate turns abandonment
/// off, preserving the plain codegen and the exact `X` summation order.
#[allow(clippy::too_many_arguments)]
fn assign_x_range(
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    dims: &[Vec<usize>],
    lo: usize,
    hi: usize,
    xsums: &mut [Vec<f64>],
    assignment: &mut Vec<usize>,
) {
    let d = points.cols();
    for p in lo..hi {
        let row = points.row(p);
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for (i, (&m, di)) in medoids.iter().zip(dims).enumerate() {
            let dist = metric.eval_segmental(row, points.row(m), di);
            if dist < best_dist {
                best_dist = dist;
                best = i;
            }
        }
        assignment.push(best);
        let mrow = points.row(medoids[best]);
        let xi = &mut xsums[best];
        for j in 0..d {
            xi[j] += (row[j] - mrow[j]).abs();
        }
    }
}

/// Merge assign-`X` partials (ascending block order) into the flat
/// assignment and the per-cluster `X` averages.
pub fn merge_assign_x(
    partials: Vec<AssignXPartial>,
    k: usize,
    d: usize,
) -> (Vec<usize>, Vec<Vec<f64>>) {
    let mut flat = Vec::new();
    let mut x = vec![vec![0.0; d]; k];
    for mut part in partials {
        flat.append(&mut part.assignment);
        for (xi, pi) in x.iter_mut().zip(&part.xsums) {
            for (a, b) in xi.iter_mut().zip(pi) {
                *a += b;
            }
        }
    }
    let mut counts = vec![0usize; k];
    for &a in &flat {
        counts[a] += 1;
    }
    for (xi, &c) in x.iter_mut().zip(&counts) {
        if c > 0 {
            let inv = 1.0 / c as f64;
            for v in xi.iter_mut() {
                *v *= inv;
            }
        }
    }
    (flat, x)
}

/// Cluster-based `X` partial sums over rows `lo..hi` for a fixed
/// assignment (`None` entries — outliers — contribute to no cluster).
/// Used by the refinement phase, where the reference sets are the final
/// iterative clusters rather than a just-computed assignment.
pub fn cluster_x_block(
    points: &Matrix,
    medoids: &[usize],
    assignment: &[Option<usize>],
    lo: usize,
    hi: usize,
) -> Vec<Vec<f64>> {
    let d = points.cols();
    let mut xsums = vec![vec![0.0; d]; medoids.len()];
    for (p, a) in assignment.iter().enumerate().take(hi).skip(lo) {
        let Some(i) = *a else { continue };
        let row = points.row(p);
        let mrow = points.row(medoids[i]);
        let xi = &mut xsums[i];
        for j in 0..d {
            xi[j] += (row[j] - mrow[j]).abs();
        }
    }
    xsums
}

/// Merge cluster-`X` partials into averages, dividing by the reference
/// set sizes (`counts[i]` = number of points assigned to cluster `i`).
pub fn merge_cluster_x(partials: Vec<Vec<Vec<f64>>>, counts: &[usize], d: usize) -> Vec<Vec<f64>> {
    let mut x = vec![vec![0.0; d]; counts.len()];
    for part in partials {
        for (xi, pi) in x.iter_mut().zip(&part) {
            for (a, b) in xi.iter_mut().zip(pi) {
                *a += b;
            }
        }
    }
    for (xi, &c) in x.iter_mut().zip(counts) {
        if c > 0 {
            let inv = 1.0 / c as f64;
            for v in xi.iter_mut() {
                *v *= inv;
            }
        }
    }
    x
}

/// Refinement assignment over rows `lo..hi`: nearest medoid under the
/// per-medoid dimension sets, `None` when the point lies inside no
/// medoid's sphere of influence — bit-identical to the loop in
/// [`crate::refine::refine_opt`] restricted to the block.
pub fn refine_assign_block(
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    dims: &[Vec<usize>],
    spheres: &[f64],
    lo: usize,
    hi: usize,
) -> Vec<Option<usize>> {
    let mut out = Vec::with_capacity(hi - lo);
    for p in lo..hi {
        let row = points.row(p);
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        let mut inside_any = false;
        for (i, (&m, di)) in medoids.iter().zip(dims).enumerate() {
            let dist = metric.eval_segmental(row, points.row(m), di);
            if dist <= spheres[i] {
                inside_any = true;
            }
            if dist < best_dist {
                best_dist = dist;
                best = i;
            }
        }
        out.push(inside_any.then_some(best));
    }
    out
}

/// Fill `diffs` with `|a_j − b_j|` while accumulating the segmental
/// raw value, abandoning as soon as the prefix accumulator reaches
/// `raw_threshold` — a raw-unit encoding of "the final distance is
/// certainly `> δᵢ`" (see [`crate::index::raw_gt_threshold`]). The
/// threshold is checked at [`PRUNE_CHUNK`] boundaries, like
/// [`segmental_bounded`], to keep the compare off the accumulator's
/// per-element dependency chain. On completion the buffer *and* the
/// returned distance are bit-identical to the plain fill +
/// [`segmental_from_diffs`]: same element order, same summation order,
/// `|x|·|x|` equals `x·x` bitwise.
#[inline]
fn fill_diffs_bounded(
    metric: DistanceKind,
    a: &[f64],
    b: &[f64],
    diffs: &mut [f64],
    raw_threshold: f64,
) -> Option<f64> {
    // Fill exactly like the plain path — one flat, vectorizable loop
    // with no interleaved control flow — then fold with chunk-boundary
    // abandonment checks. An abandoned pair wastes its (cheap, SIMD)
    // fill but skips the tail of the serial accumulation chain, which
    // is the latency bottleneck; a completed fold visits the elements
    // in the plain order and is bit-identical.
    for ((&x, &y), dv) in a.iter().zip(b).zip(diffs.iter_mut()) {
        *dv = (x - y).abs();
    }
    let len = diffs.len() as f64;
    match metric {
        DistanceKind::Manhattan => {
            let mut sum = 0.0f64;
            for dc in diffs.chunks(PRUNE_CHUNK) {
                for &v in dc {
                    sum += v;
                }
                if sum >= raw_threshold {
                    return None;
                }
            }
            Some(sum / len)
        }
        DistanceKind::Euclidean => {
            let mut sum = 0.0f64;
            for dc in diffs.chunks(PRUNE_CHUNK) {
                for &v in dc {
                    sum += v * v;
                }
                if sum >= raw_threshold {
                    return None;
                }
            }
            Some((sum / len).sqrt())
        }
        DistanceKind::Chebyshev => {
            let mut worst = 0.0f64;
            for dc in diffs.chunks(PRUNE_CHUNK) {
                for &v in dc {
                    worst = worst.max(v);
                }
                if worst >= raw_threshold {
                    return None;
                }
            }
            Some(worst)
        }
    }
}

/// [`fused_block`] with index pruning: candidates whose sketch or
/// triangle lower bound proves them outside `δᵢ` skip the exact
/// evaluation entirely, and the surviving evaluations abandon mid-sum
/// once their prefix accumulator certifies `dist > δᵢ`. Members, their
/// order, and the `X` sums are bit-identical to the unpruned kernel — a
/// pruned or abandoned pair is certainly a non-member, so it would have
/// contributed nothing either way, and a member's evaluation never
/// abandons (its accumulator stays below the threshold throughout).
#[allow(clippy::too_many_arguments)]
pub fn fused_block_pruned(
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    deltas: &[f64],
    ctx: &FusedPruneCtx,
    lo: usize,
    hi: usize,
    stats: &mut PruneStats,
    tile: Option<&TileView<'_>>,
) -> FusedPartial {
    let d = points.cols();
    let k = medoids.len();
    let mut locs: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut xsums = vec![vec![0.0; d]; k];
    let mut diffs = vec![0.0; d];
    // Raw-unit "certainly outside δᵢ" thresholds, one per slot.
    let rt_member: Vec<f64> = deltas
        .iter()
        .map(|&delta| raw_gt_threshold(metric, delta, d))
        .collect();
    // Exact distances of the current point to the slots already
    // verified this sweep — the triangle-bound anchors. NaN marks a
    // pruned or abandoned slot (a NaN anchor yields a NaN bound and
    // never prunes).
    let mut evaluated = vec![f64::NAN; k];
    // Adaptive gates: probe the first PROBE_POINTS rows with the full
    // machinery, then disable (a) the whole-pair bounds if too few
    // probed pairs pruned, and (b) the prefix device if too few reached
    // evaluations abandoned (see `crate::index`). The decisions depend
    // only on the block's rows, so counters and results stay
    // independent of thread count.
    let probe_end = (lo + PROBE_POINTS).min(hi);
    let base_bounds = stats.range_sketch_pruned + stats.range_triangle_pruned;
    let base_prefix = stats.range_prefix_pruned;
    let base_verified = stats.range_verified;
    let mut probing = true;
    let mut bounds_on = true;
    let mut prefix_on = true;
    for p in lo..hi {
        if probing && p == probe_end {
            probing = false;
            let pruned = stats.range_sketch_pruned + stats.range_triangle_pruned - base_bounds;
            let probed = ((probe_end - lo) * k) as u64;
            bounds_on = pruned >= probed >> PROBE_DISABLE_SHIFT;
            let abandoned = stats.range_prefix_pruned - base_prefix;
            let reached = abandoned + (stats.range_verified - base_verified);
            prefix_on = abandoned * PREFIX_KEEP_DEN >= reached * PREFIX_KEEP_NUM;
            if !bounds_on && !prefix_on {
                // Nothing left of the pruning machinery: hand the rest
                // of the block to the plain loop — columnar when the
                // layout is available — continuing the same
                // accumulators so membership order and `X` summation
                // order stay bit-identical.
                stats.range_verified += ((hi - p) * k) as u64;
                match tile {
                    Some(t) => fused_range_columnar(
                        t, points, metric, medoids, deltas, p, hi, &mut locs, &mut xsums,
                    ),
                    None => fused_range(
                        points, metric, medoids, deltas, p, hi, &mut locs, &mut xsums, &mut diffs,
                    ),
                }
                return FusedPartial { locs, xsums };
            }
        }
        let prow = points.row(p);
        for e in evaluated.iter_mut() {
            *e = f64::NAN;
        }
        for (i, &m) in medoids.iter().enumerate() {
            if bounds_on && ctx.prunes(p, i, deltas[i], &evaluated[..i], stats) {
                continue;
            }
            let mrow = points.row(m);
            let dist = if prefix_on {
                match fill_diffs_bounded(metric, prow, mrow, &mut diffs, rt_member[i]) {
                    Some(dist) => dist,
                    None => {
                        stats.range_prefix_pruned += 1;
                        continue;
                    }
                }
            } else {
                for j in 0..d {
                    diffs[j] = (prow[j] - mrow[j]).abs();
                }
                segmental_from_diffs(metric, &diffs)
            };
            evaluated[i] = dist;
            stats.range_verified += 1;
            if dist <= deltas[i] {
                locs[i].push(p);
                let xi = &mut xsums[i];
                for j in 0..d {
                    xi[j] += diffs[j];
                }
            }
        }
    }
    FusedPartial { locs, xsums }
}

/// [`assign_block`] with monotone prefix pruning: a candidate's
/// evaluation is abandoned once its running segmental prefix reaches
/// the incumbent best distance — the prefix is a certified lower bound
/// (see [`crate::index`]), and `prefix ≥ best` already decides the
/// strict `<` comparison against it. Winners are bit-identical.
#[allow(clippy::too_many_arguments)]
pub fn assign_block_pruned(
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    dims: &[Vec<usize>],
    lo: usize,
    hi: usize,
    stats: &mut PruneStats,
    tile: Option<&TileView<'_>>,
    mut fast: Option<&mut FastMathStats>,
) -> Vec<usize> {
    // When every projection is tiny, evaluating is cheaper than
    // reasoning about abandoning (see `NEAREST_MIN_DIMS`) — run the
    // plain kernel (columnar when the layout is available) unchanged
    // and count everything as verified.
    if dims.iter().all(|di| di.len() < NEAREST_MIN_DIMS) {
        stats.nearest_verified += ((hi - lo) * medoids.len()) as u64;
        return match tile {
            Some(t) => assign_block_columnar(
                t,
                points,
                metric,
                medoids,
                dims,
                lo,
                hi,
                fast.as_deref_mut(),
            ),
            None => assign_block(points, metric, medoids, dims, lo, hi),
        };
    }
    // Hoisted threshold halves: the per-candidate raw threshold is the
    // single multiply `tbase · lens[i]` (see `raw_tbase`).
    let lens: Vec<f64> = dims
        .iter()
        .map(|di| raw_len_factor(metric, di.len()))
        .collect();
    // Adaptive gate: probe the first PROBE_POINTS rows with abandonment
    // enabled, then keep it only when most reached evaluations abandon
    // (see `crate::index::PREFIX_KEEP_NUM`). Only slots with large
    // projections ever consult the device.
    let big_slots = dims
        .iter()
        .filter(|di| di.len() >= NEAREST_MIN_DIMS)
        .count() as u64;
    let probe_end = (lo + PROBE_POINTS).min(hi);
    let base_pruned = stats.nearest_pruned;
    let mut out = Vec::with_capacity(hi - lo);
    for p in lo..hi {
        if p == probe_end {
            let abandoned = stats.nearest_pruned - base_pruned;
            let reached = ((probe_end - lo) as u64) * big_slots;
            if abandoned * PREFIX_KEEP_DEN < reached * PREFIX_KEEP_NUM {
                // Abandonment is not paying for its branches: hand the
                // rest of the block to the plain loop (columnar when
                // the layout is available).
                stats.nearest_verified += ((hi - p) * medoids.len()) as u64;
                match tile {
                    Some(t) => assign_range_columnar(
                        t,
                        points,
                        metric,
                        medoids,
                        dims,
                        p,
                        hi,
                        &mut out,
                        fast.as_deref_mut(),
                    ),
                    None => out.extend(assign_block(points, metric, medoids, dims, p, hi)),
                }
                return out;
            }
        }
        let row = points.row(p);
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        // raw_tbase(metric, ∞) = ∞ for every metric.
        let mut tbase = f64::INFINITY;
        for (i, ((&m, di), &lf)) in medoids.iter().zip(dims).zip(&lens).enumerate() {
            // Tiny projections are cheaper to evaluate than to reason
            // about abandoning (see `NEAREST_MIN_DIMS`).
            let verdict = if di.len() < NEAREST_MIN_DIMS {
                Some(metric.eval_segmental(row, points.row(m), di))
            } else {
                segmental_bounded(metric, row, points.row(m), di, tbase * lf)
            };
            match verdict {
                Some(dist) => {
                    stats.nearest_verified += 1;
                    if dist < best_dist {
                        best_dist = dist;
                        best = i;
                        tbase = raw_tbase(metric, dist);
                    }
                }
                None => stats.nearest_pruned += 1,
            }
        }
        out.push(best);
    }
    out
}

/// [`assign_x_block`] with the same prefix pruning as
/// [`assign_block_pruned`]. The `X` accumulation only ever reads the
/// *winning* medoid's full-dimensional differences, which are computed
/// outside the pruned comparison, so the sums are untouched by pruning.
#[allow(clippy::too_many_arguments)]
pub fn assign_x_block_pruned(
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    dims: &[Vec<usize>],
    lo: usize,
    hi: usize,
    stats: &mut PruneStats,
    tile: Option<&TileView<'_>>,
    mut fast: Option<&mut FastMathStats>,
) -> AssignXPartial {
    if dims.iter().all(|di| di.len() < NEAREST_MIN_DIMS) {
        stats.nearest_verified += ((hi - lo) * medoids.len()) as u64;
        return match tile {
            Some(t) => assign_x_block_columnar(
                t,
                points,
                metric,
                medoids,
                dims,
                lo,
                hi,
                fast.as_deref_mut(),
            ),
            None => assign_x_block(points, metric, medoids, dims, lo, hi),
        };
    }
    let d = points.cols();
    let lens: Vec<f64> = dims
        .iter()
        .map(|di| raw_len_factor(metric, di.len()))
        .collect();
    let big_slots = dims
        .iter()
        .filter(|di| di.len() >= NEAREST_MIN_DIMS)
        .count() as u64;
    let probe_end = (lo + PROBE_POINTS).min(hi);
    let base_pruned = stats.nearest_pruned;
    let mut xsums = vec![vec![0.0; d]; medoids.len()];
    let mut assignment = Vec::with_capacity(hi - lo);
    for p in lo..hi {
        if p == probe_end {
            let abandoned = stats.nearest_pruned - base_pruned;
            let reached = ((probe_end - lo) as u64) * big_slots;
            if abandoned * PREFIX_KEEP_DEN < reached * PREFIX_KEEP_NUM {
                // Hand the rest of the block to the plain loop
                // (columnar when the layout is available), continuing
                // the same accumulators so the `X` summation order
                // stays bit-identical.
                stats.nearest_verified += ((hi - p) * medoids.len()) as u64;
                match tile {
                    Some(t) => assign_x_range_columnar(
                        t,
                        points,
                        metric,
                        medoids,
                        dims,
                        p,
                        hi,
                        &mut xsums,
                        &mut assignment,
                        fast.as_deref_mut(),
                    ),
                    None => assign_x_range(
                        points,
                        metric,
                        medoids,
                        dims,
                        p,
                        hi,
                        &mut xsums,
                        &mut assignment,
                    ),
                }
                return AssignXPartial { assignment, xsums };
            }
        }
        let row = points.row(p);
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        let mut tbase = f64::INFINITY;
        for (i, ((&m, di), &lf)) in medoids.iter().zip(dims).zip(&lens).enumerate() {
            let verdict = if di.len() < NEAREST_MIN_DIMS {
                Some(metric.eval_segmental(row, points.row(m), di))
            } else {
                segmental_bounded(metric, row, points.row(m), di, tbase * lf)
            };
            match verdict {
                Some(dist) => {
                    stats.nearest_verified += 1;
                    if dist < best_dist {
                        best_dist = dist;
                        best = i;
                        tbase = raw_tbase(metric, dist);
                    }
                }
                None => stats.nearest_pruned += 1,
            }
        }
        assignment.push(best);
        let mrow = points.row(medoids[best]);
        let xi = &mut xsums[best];
        for j in 0..d {
            xi[j] += (row[j] - mrow[j]).abs();
        }
    }
    AssignXPartial { assignment, xsums }
}

/// [`refine_assign_block`] with prefix pruning. A candidate here feeds
/// *two* comparisons — `dist ≤ spheres[i]` (inside any sphere?) and
/// `dist < best` (nearest?) — so an evaluation may only be abandoned
/// when the prefix already decides **both**: `dist > spheres[i]`
/// forces the membership test false, and `dist ≥ best` forces the
/// nearest test false. Both conditions are "accumulator reaches a raw
/// threshold", so their conjunction is the *larger* threshold (a NaN
/// sphere threshold — an unconditionally-inside `∞` sphere — makes the
/// conjunction unreachable). Outlier flags and winners are
/// bit-identical.
#[allow(clippy::too_many_arguments)]
pub fn refine_assign_block_pruned(
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    dims: &[Vec<usize>],
    spheres: &[f64],
    lo: usize,
    hi: usize,
    stats: &mut PruneStats,
    tile: Option<&TileView<'_>>,
) -> Vec<Option<usize>> {
    if dims.iter().all(|di| di.len() < NEAREST_MIN_DIMS) {
        stats.nearest_verified += ((hi - lo) * medoids.len()) as u64;
        return match tile {
            Some(t) => {
                refine_assign_block_columnar(t, points, metric, medoids, dims, spheres, lo, hi)
            }
            None => refine_assign_block(points, metric, medoids, dims, spheres, lo, hi),
        };
    }
    // Raw-unit "certainly outside the sphere" thresholds, one per slot
    // (spheres and dimension sets are fixed for the whole block).
    let rt_sphere: Vec<f64> = spheres
        .iter()
        .zip(dims)
        .map(|(&sphere, di)| raw_gt_threshold(metric, sphere, di.len()))
        .collect();
    let lens: Vec<f64> = dims
        .iter()
        .map(|di| raw_len_factor(metric, di.len()))
        .collect();
    let big_slots = dims
        .iter()
        .filter(|di| di.len() >= NEAREST_MIN_DIMS)
        .count() as u64;
    let probe_end = (lo + PROBE_POINTS).min(hi);
    let base_pruned = stats.nearest_pruned;
    let mut out = Vec::with_capacity(hi - lo);
    for p in lo..hi {
        if p == probe_end {
            let abandoned = stats.nearest_pruned - base_pruned;
            let reached = ((probe_end - lo) as u64) * big_slots;
            if abandoned * PREFIX_KEEP_DEN < reached * PREFIX_KEEP_NUM {
                // Hand the rest of the block to the plain loop
                // (columnar when the layout is available).
                stats.nearest_verified += ((hi - p) * medoids.len()) as u64;
                match tile {
                    Some(t) => refine_assign_range_columnar(
                        t, points, metric, medoids, dims, spheres, p, hi, &mut out,
                    ),
                    None => out.extend(refine_assign_block(
                        points, metric, medoids, dims, spheres, p, hi,
                    )),
                }
                return out;
            }
        }
        let row = points.row(p);
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        let mut tbase = f64::INFINITY;
        let mut inside_any = false;
        for (i, ((&m, di), &lf)) in medoids.iter().zip(dims).zip(&lens).enumerate() {
            let rt_best = tbase * lf;
            // Once some sphere already contains the point, later
            // candidates only matter for the nearest test.
            let rt = if inside_any {
                rt_best
            } else if rt_sphere[i].is_nan() {
                f64::NAN
            } else {
                rt_best.max(rt_sphere[i])
            };
            let verdict = if di.len() < NEAREST_MIN_DIMS {
                Some(metric.eval_segmental(row, points.row(m), di))
            } else {
                segmental_bounded(metric, row, points.row(m), di, rt)
            };
            match verdict {
                Some(dist) => {
                    stats.nearest_verified += 1;
                    if dist <= spheres[i] {
                        inside_any = true;
                    }
                    if dist < best_dist {
                        best_dist = dist;
                        best = i;
                        tbase = raw_tbase(metric, dist);
                    }
                }
                None => stats.nearest_pruned += 1,
            }
        }
        out.push(inside_any.then_some(best));
    }
    out
}

// ---------------------------------------------------------------------
// Columnar twins.
//
// Every kernel above loops points outermost and dimensions innermost:
// per (point, candidate) pair the distance accumulator is a serial
// dependency chain the compiler must not reassociate, so the loops stay
// scalar. The twins below consume the dimension-major tiles of
// [`crate::layout::ColumnarBlocks`] and loop dimensions outermost over
// a whole block of points: each inner iteration updates `w`
// *independent* accumulators (one per point), a branch-free form the
// auto-vectorizer handles — while every individual accumulator still
// receives exactly the same additions in exactly the same
// (dimension-ascending) order as its row-major twin. Together with the
// facts that `|x|·|x| == x·x` bitwise and that `f64::max` is the very
// function the row-major fold uses, every distance, membership flag,
// winner, and `X` cell is bit-identical (asserted by the agreement
// tests below and by `tests/columnar.rs`).

/// Divide/fold the raw per-point accumulators of a full- or
/// projected-space sweep into final segmental distances, matching the
/// tail arithmetic of [`segmental_from_diffs`] / `eval_segmental`
/// element for element (plain division, not a reciprocal multiply).
#[inline]
fn finalize_segmental(metric: DistanceKind, dist: &mut [f64], len: usize) {
    if len == 0 {
        // eval_segmental defines the empty projection as 0.0 for the
        // summing metrics; the accumulators already hold 0.0.
        return;
    }
    let len = len as f64;
    match metric {
        DistanceKind::Manhattan => {
            for v in dist.iter_mut() {
                *v /= len;
            }
        }
        DistanceKind::Euclidean => {
            for v in dist.iter_mut() {
                *v = (*v / len).sqrt();
            }
        }
        DistanceKind::Chebyshev => {}
    }
}

/// Raw full-space accumulators of `metric` between medoid row `mrow`
/// and tile rows `lo..hi`, one per point, dimension-outer. The raw
/// value per point is bit-identical to the fold over a row-major
/// `diffs` buffer because each point's accumulator sees its dimensions
/// in the same ascending order.
fn raw_full_distances_columnar(
    tile: &TileView<'_>,
    metric: DistanceKind,
    mrow: &[f64],
    lo: usize,
    hi: usize,
    dist: &mut Vec<f64>,
) {
    let w = hi - lo;
    dist.clear();
    dist.resize(w, 0.0);
    match metric {
        DistanceKind::Manhattan => {
            for (j, &mj) in mrow.iter().enumerate() {
                let col = tile.col(j, lo, hi);
                for (acc, &x) in dist.iter_mut().zip(col) {
                    *acc += (x - mj).abs();
                }
            }
        }
        DistanceKind::Euclidean => {
            for (j, &mj) in mrow.iter().enumerate() {
                let col = tile.col(j, lo, hi);
                for (acc, &x) in dist.iter_mut().zip(col) {
                    let dv = x - mj;
                    *acc += dv * dv;
                }
            }
        }
        DistanceKind::Chebyshev => {
            for (j, &mj) in mrow.iter().enumerate() {
                let col = tile.col(j, lo, hi);
                for (acc, &x) in dist.iter_mut().zip(col) {
                    *acc = f64::max(*acc, (x - mj).abs());
                }
            }
        }
    }
}

/// Projected segmental distances of one (medoid, dimension-set) slot
/// over tile rows `lo..hi`, written into `out[p − lo]` — bit-identical
/// to `metric.eval_segmental(points.row(p), mrow, di)` per point.
fn segmental_column_columnar(
    tile: &TileView<'_>,
    metric: DistanceKind,
    mrow: &[f64],
    di: &[usize],
    lo: usize,
    hi: usize,
    out: &mut [f64],
) {
    for v in out.iter_mut() {
        *v = 0.0;
    }
    match metric {
        DistanceKind::Manhattan => {
            for &j in di {
                let mj = mrow[j];
                let col = tile.col(j, lo, hi);
                for (acc, &x) in out.iter_mut().zip(col) {
                    *acc += (x - mj).abs();
                }
            }
        }
        DistanceKind::Euclidean => {
            for &j in di {
                let mj = mrow[j];
                let col = tile.col(j, lo, hi);
                for (acc, &x) in out.iter_mut().zip(col) {
                    let dv = x - mj;
                    *acc += dv * dv;
                }
            }
        }
        DistanceKind::Chebyshev => {
            for &j in di {
                let mj = mrow[j];
                let col = tile.col(j, lo, hi);
                for (acc, &x) in out.iter_mut().zip(col) {
                    *acc = f64::max(*acc, (x - mj).abs());
                }
            }
        }
    }
    finalize_segmental(metric, out, di.len());
}

/// Add each listed member's `|p_j − m_j|` row into the cluster's `X`
/// sums, dimension-outer. Per `X` cell the members are visited in the
/// same ascending order as the row-major kernels, and the local
/// read-accumulate-writeback is bitwise the sequential in-place adds.
fn accumulate_members_columnar(
    tile: &TileView<'_>,
    mrow: &[f64],
    members: &[usize],
    lo: usize,
    hi: usize,
    xi: &mut [f64],
) {
    if members.is_empty() {
        return;
    }
    for (j, &mj) in mrow.iter().enumerate() {
        let col = tile.col(j, lo, hi);
        let mut s = xi[j];
        for &gp in members {
            s += (col[gp - lo] - mj).abs();
        }
        xi[j] = s;
    }
}

/// Columnar twin of `fused_range`: continues accumulation into existing
/// `locs`/`xsums`, so the pruned kernel can hand it a gate-off tail.
#[allow(clippy::too_many_arguments)]
fn fused_range_columnar(
    tile: &TileView<'_>,
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    deltas: &[f64],
    lo: usize,
    hi: usize,
    locs: &mut [Vec<usize>],
    xsums: &mut [Vec<f64>],
) {
    if hi == lo {
        return;
    }
    let d = points.cols();
    let mut dist = Vec::new();
    for (i, &m) in medoids.iter().enumerate() {
        let mrow = points.row(m);
        raw_full_distances_columnar(tile, metric, mrow, lo, hi, &mut dist);
        finalize_segmental(metric, &mut dist, d);
        let delta = deltas[i];
        let li = &mut locs[i];
        let start = li.len();
        for (o, &dv) in dist.iter().enumerate() {
            if dv <= delta {
                li.push(lo + o);
            }
        }
        let (li, xi) = (&locs[i][start..], &mut xsums[i]);
        accumulate_members_columnar(tile, mrow, li, lo, hi, xi);
    }
}

/// Columnar twin of [`fused_block`].
pub fn fused_block_columnar(
    tile: &TileView<'_>,
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    deltas: &[f64],
    lo: usize,
    hi: usize,
) -> FusedPartial {
    let d = points.cols();
    let k = medoids.len();
    let mut locs: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut xsums = vec![vec![0.0; d]; k];
    fused_range_columnar(
        tile, points, metric, medoids, deltas, lo, hi, &mut locs, &mut xsums,
    );
    FusedPartial { locs, xsums }
}

/// The `f32` prefilter's per-pair tolerance coefficient: multiply by
/// `‖p‖₁ + ‖m‖₁` for the absolute error bound τ(p, m) (see
/// [`FAST_MATH_TOLERANCE_SCALE`] for the derivation).
#[inline]
fn fast_tau_coefficient(d: usize) -> f64 {
    FAST_MATH_TOLERANCE_SCALE * (d as f64 + 4.0) * (f32::EPSILON as f64)
}

/// `f32`-screened argmin over one tile range: approximate distances
/// give each candidate a conservative interval `[d₃₂ − τ, d₃₂ + τ]`; a
/// candidate whose lower bound exceeds the smallest upper bound cannot
/// win the strict-`<` lowest-index argmin and is excluded without `f64`
/// work, every survivor is evaluated exactly (ascending index, same
/// comparison), so the winners are bit-identical to the plain kernels.
/// Any NaN/inf — in the data, the approximation, or the tolerance —
/// fails the strict exclusion comparison and falls through to the
/// exact path.
#[allow(clippy::too_many_arguments)]
fn assign_range_columnar_fast(
    tile: &TileView<'_>,
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    dims: &[Vec<usize>],
    lo: usize,
    hi: usize,
    out: &mut Vec<usize>,
    fstats: &mut FastMathStats,
) {
    let w = hi - lo;
    let k = medoids.len();
    let tau_coeff = fast_tau_coefficient(points.cols());
    // k approximate distance columns plus the per-medoid magnitudes.
    let mut approx = vec![0.0f32; k * w];
    let mut mag_m = vec![0.0f64; k];
    let mut m32: Vec<f32> = Vec::new();
    for (i, (&m, di)) in medoids.iter().zip(dims).enumerate() {
        let mrow = points.row(m);
        mag_m[i] = tile.mag(m);
        m32.clear();
        m32.extend(di.iter().map(|&j| mrow[j] as f32));
        let acc = &mut approx[i * w..(i + 1) * w];
        match metric {
            DistanceKind::Chebyshev => {
                for (&j, &mj) in di.iter().zip(&m32) {
                    if let Some(col) = tile.col32(j, lo, hi) {
                        for (a, &x) in acc.iter_mut().zip(col) {
                            *a = f32::max(*a, (x - mj).abs());
                        }
                    }
                }
            }
            // Manhattan (Euclidean never reaches the fast path).
            _ => {
                for (&j, &mj) in di.iter().zip(&m32) {
                    if let Some(col) = tile.col32(j, lo, hi) {
                        for (a, &x) in acc.iter_mut().zip(col) {
                            *a += (x - mj).abs();
                        }
                    }
                }
                let len = di.len() as f32;
                if len > 0.0 {
                    for a in acc.iter_mut() {
                        *a /= len;
                    }
                }
            }
        }
    }
    for o in 0..w {
        let p = lo + o;
        let mag_p = tile.mag(p);
        let mut min_hi = f64::INFINITY;
        for i in 0..k {
            let hi_bound = approx[i * w + o] as f64 + tau_coeff * (mag_p + mag_m[i]);
            if hi_bound < min_hi {
                min_hi = hi_bound;
            }
        }
        let row = points.row(p);
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for (i, (&m, di)) in medoids.iter().zip(dims).enumerate() {
            fstats.screened += 1;
            let lo_bound = approx[i * w + o] as f64 - tau_coeff * (mag_p + mag_m[i]);
            if lo_bound > min_hi {
                fstats.excluded += 1;
                continue;
            }
            fstats.verified += 1;
            let dist = metric.eval_segmental(row, points.row(m), di);
            if dist < best_dist {
                best_dist = dist;
                best = i;
            }
        }
        out.push(best);
    }
}

/// Columnar argmin over rows `lo..hi`, appending winners to `out`. With
/// `fast` set (and an `f32` mirror present, and a metric whose
/// segmental distance the screen's error model covers — Euclidean's
/// squared accumulators need a different bound and simply take the
/// exact columnar path), candidates are screened through
/// [`assign_range_columnar_fast`] first; either way the winners are
/// bit-identical to [`assign_block`].
#[allow(clippy::too_many_arguments)]
fn assign_range_columnar(
    tile: &TileView<'_>,
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    dims: &[Vec<usize>],
    lo: usize,
    hi: usize,
    out: &mut Vec<usize>,
    fast: Option<&mut FastMathStats>,
) {
    let w = hi - lo;
    if w == 0 {
        return;
    }
    if let Some(fstats) = fast {
        if tile.has_fast() && !matches!(metric, DistanceKind::Euclidean) {
            assign_range_columnar_fast(tile, points, metric, medoids, dims, lo, hi, out, fstats);
            return;
        }
    }
    let mut best = vec![0usize; w];
    let mut best_dist = vec![f64::INFINITY; w];
    let mut col = vec![0.0f64; w];
    for (i, (&m, di)) in medoids.iter().zip(dims).enumerate() {
        segmental_column_columnar(tile, metric, points.row(m), di, lo, hi, &mut col);
        for ((bd, b), &dv) in best_dist.iter_mut().zip(best.iter_mut()).zip(col.iter()) {
            if dv < *bd {
                *bd = dv;
                *b = i;
            }
        }
    }
    out.extend_from_slice(&best);
}

/// Columnar twin of [`assign_block`] (winners bit-identical; `fast`
/// engages the `f32` exactness-gated screen).
#[allow(clippy::too_many_arguments)]
pub fn assign_block_columnar(
    tile: &TileView<'_>,
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    dims: &[Vec<usize>],
    lo: usize,
    hi: usize,
    fast: Option<&mut FastMathStats>,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(hi - lo);
    assign_range_columnar(tile, points, metric, medoids, dims, lo, hi, &mut out, fast);
    out
}

/// Columnar twin of `assign_x_range`: winners first (optionally `f32`-
/// screened), then the per-cluster `X` sums accumulated dimension-outer
/// over each cluster's members in ascending order — the same per-cell
/// addition sequence as the row-major sweep.
#[allow(clippy::too_many_arguments)]
fn assign_x_range_columnar(
    tile: &TileView<'_>,
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    dims: &[Vec<usize>],
    lo: usize,
    hi: usize,
    xsums: &mut [Vec<f64>],
    assignment: &mut Vec<usize>,
    fast: Option<&mut FastMathStats>,
) {
    let start = assignment.len();
    assign_range_columnar(
        tile, points, metric, medoids, dims, lo, hi, assignment, fast,
    );
    let winners = &assignment[start..];
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); medoids.len()];
    for (o, &wi) in winners.iter().enumerate() {
        members[wi].push(lo + o);
    }
    for ((&m, mem), xi) in medoids.iter().zip(&members).zip(xsums.iter_mut()) {
        accumulate_members_columnar(tile, points.row(m), mem, lo, hi, xi);
    }
}

/// Columnar twin of [`assign_x_block`].
#[allow(clippy::too_many_arguments)]
pub fn assign_x_block_columnar(
    tile: &TileView<'_>,
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    dims: &[Vec<usize>],
    lo: usize,
    hi: usize,
    fast: Option<&mut FastMathStats>,
) -> AssignXPartial {
    let d = points.cols();
    let mut xsums = vec![vec![0.0; d]; medoids.len()];
    let mut assignment = Vec::with_capacity(hi - lo);
    assign_x_range_columnar(
        tile,
        points,
        metric,
        medoids,
        dims,
        lo,
        hi,
        &mut xsums,
        &mut assignment,
        fast,
    );
    AssignXPartial { assignment, xsums }
}

/// Columnar twin of [`columns_block`].
pub fn columns_block_columnar(
    tile: &TileView<'_>,
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    dims: &[Vec<usize>],
    lo: usize,
    hi: usize,
) -> Vec<Vec<f64>> {
    medoids
        .iter()
        .zip(dims)
        .map(|(&m, di)| {
            let mut col = vec![0.0f64; hi - lo];
            segmental_column_columnar(tile, metric, points.row(m), di, lo, hi, &mut col);
            col
        })
        .collect()
}

/// Columnar twin of [`cluster_x_block`].
pub fn cluster_x_block_columnar(
    tile: &TileView<'_>,
    points: &Matrix,
    medoids: &[usize],
    assignment: &[Option<usize>],
    lo: usize,
    hi: usize,
) -> Vec<Vec<f64>> {
    let d = points.cols();
    let mut xsums = vec![vec![0.0; d]; medoids.len()];
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); medoids.len()];
    for (p, a) in assignment.iter().enumerate().take(hi).skip(lo) {
        if let Some(i) = *a {
            members[i].push(p);
        }
    }
    for ((&m, mem), xi) in medoids.iter().zip(&members).zip(xsums.iter_mut()) {
        accumulate_members_columnar(tile, points.row(m), mem, lo, hi, xi);
    }
    xsums
}

/// Columnar twin of `refine_assign_block` for a sub-range, appending to
/// `out` — the gate-off tail of the pruned refine kernel.
#[allow(clippy::too_many_arguments)]
fn refine_assign_range_columnar(
    tile: &TileView<'_>,
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    dims: &[Vec<usize>],
    spheres: &[f64],
    lo: usize,
    hi: usize,
    out: &mut Vec<Option<usize>>,
) {
    let w = hi - lo;
    if w == 0 {
        return;
    }
    let mut best = vec![0usize; w];
    let mut best_dist = vec![f64::INFINITY; w];
    let mut inside = vec![false; w];
    let mut col = vec![0.0f64; w];
    for (i, (&m, di)) in medoids.iter().zip(dims).enumerate() {
        segmental_column_columnar(tile, metric, points.row(m), di, lo, hi, &mut col);
        let sphere = spheres[i];
        for (((bd, b), ins), &dv) in best_dist
            .iter_mut()
            .zip(best.iter_mut())
            .zip(inside.iter_mut())
            .zip(col.iter())
        {
            if dv <= sphere {
                *ins = true;
            }
            if dv < *bd {
                *bd = dv;
                *b = i;
            }
        }
    }
    out.extend(inside.iter().zip(&best).map(|(&ins, &b)| ins.then_some(b)));
}

/// Columnar twin of [`refine_assign_block`].
#[allow(clippy::too_many_arguments)]
pub fn refine_assign_block_columnar(
    tile: &TileView<'_>,
    points: &Matrix,
    metric: DistanceKind,
    medoids: &[usize],
    dims: &[Vec<usize>],
    spheres: &[f64],
    lo: usize,
    hi: usize,
) -> Vec<Option<usize>> {
    let mut out = Vec::with_capacity(hi - lo);
    refine_assign_range_columnar(
        tile, points, metric, medoids, dims, spheres, lo, hi, &mut out,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::NeighborIndex;
    use crate::layout::ColumnarBlocks;
    use crate::locality::{localities, medoid_deltas};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * d).map(|_| rng.random_range(0.0..100.0)).collect();
        Matrix::from_vec(data, n, d)
    }

    #[test]
    fn blocks_tile_exactly() {
        for n in [0, 1, BLOCK - 1, BLOCK, BLOCK + 1, 5 * BLOCK + 17] {
            let bs = blocks(n);
            if n == 0 {
                assert!(bs.is_empty());
                continue;
            }
            assert_eq!(bs[0].0, 0);
            assert_eq!(bs.last().unwrap().1, n);
            for w in bs.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
            assert!(bs.iter().all(|&(a, b)| b > a && b - a <= BLOCK));
        }
    }

    #[test]
    fn fused_localities_match_legacy_exactly() {
        for metric in [
            DistanceKind::Manhattan,
            DistanceKind::Euclidean,
            DistanceKind::Chebyshev,
        ] {
            let points = random_points(700, 6, 11);
            let medoids = vec![3usize, 99, 402];
            let deltas = medoid_deltas(&points, &medoids, metric);
            let legacy = localities(&points, &medoids, &deltas, metric);
            let partials: Vec<FusedPartial> = blocks(points.rows())
                .into_iter()
                .map(|(lo, hi)| fused_block(&points, metric, &medoids, &deltas, lo, hi))
                .collect();
            let (locs, _) = merge_fused(partials, &medoids, points.cols());
            assert_eq!(locs, legacy, "{metric:?}");
        }
    }

    #[test]
    fn fused_x_matches_direct_blocked_sum() {
        // The X averages must equal the blocked accumulation over the
        // merged localities (the canonical order), independent of how
        // rows are grouped into fused calls.
        let points = random_points(300, 4, 5);
        let medoids = vec![0usize, 150];
        let metric = DistanceKind::Manhattan;
        let deltas = medoid_deltas(&points, &medoids, metric);
        let one_block = fused_block(&points, metric, &medoids, &deltas, 0, 300);
        let (locs_a, x_a) = merge_fused(vec![one_block], &medoids, 4);
        let partials: Vec<FusedPartial> = [(0, 77), (77, 200), (200, 300)]
            .into_iter()
            .map(|(lo, hi)| fused_block(&points, metric, &medoids, &deltas, lo, hi))
            .collect();
        let (locs_b, x_b) = merge_fused(partials, &medoids, 4);
        assert_eq!(locs_a, locs_b);
        // Note: different groupings may differ in the last ulp of the
        // sums; the canonical tiling is fixed, so production paths never
        // regroup. Here the values should still be essentially equal.
        for (ra, rb) in x_a.iter().zip(&x_b) {
            for (a, b) in ra.iter().zip(rb) {
                assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0));
            }
        }
    }

    #[test]
    fn assign_block_matches_assign_points() {
        let points = random_points(500, 5, 9);
        let medoids = vec![0usize, 100, 300];
        let dims = vec![vec![0, 1], vec![2, 3], vec![1, 4]];
        let metric = DistanceKind::Manhattan;
        let legacy = crate::assign::assign_points(&points, &medoids, &dims, metric);
        let flat: Vec<usize> = blocks(points.rows())
            .into_iter()
            .flat_map(|(lo, hi)| assign_block(&points, metric, &medoids, &dims, lo, hi))
            .collect();
        assert_eq!(flat, legacy);
    }

    #[test]
    fn assign_x_assignment_matches_plain_assign() {
        let points = random_points(400, 5, 13);
        let medoids = vec![7usize, 200];
        let dims = vec![vec![0, 2], vec![1, 3]];
        let metric = DistanceKind::Manhattan;
        let partials: Vec<AssignXPartial> = blocks(points.rows())
            .into_iter()
            .map(|(lo, hi)| assign_x_block(&points, metric, &medoids, &dims, lo, hi))
            .collect();
        let (flat, x) = merge_assign_x(partials, 2, 5);
        assert_eq!(
            flat,
            crate::assign::assign_points(&points, &medoids, &dims, metric)
        );
        // X must equal the cluster-based average_dimension_distances up
        // to accumulation-order rounding.
        let opt: Vec<Option<usize>> = flat.iter().map(|&a| Some(a)).collect();
        let clusters = crate::assign::group_members(&opt, 2);
        let legacy = crate::dims::average_dimension_distances(&points, &medoids, &clusters);
        for (ra, rb) in x.iter().zip(&legacy) {
            for (a, b) in ra.iter().zip(rb) {
                assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn refine_assign_block_marks_outliers() {
        let rows: Vec<[f64; 2]> = vec![[0.0, 0.0], [10.0, 10.0], [500.0, 500.0]];
        let points = Matrix::from_rows(&rows, 2);
        let medoids = vec![0usize, 1];
        let dims = vec![vec![0, 1], vec![0, 1]];
        let metric = DistanceKind::Manhattan;
        let spheres = crate::refine::spheres_of_influence(&points, &medoids, &dims, metric);
        let out = refine_assign_block(&points, metric, &medoids, &dims, &spheres, 0, 3);
        assert_eq!(out, vec![Some(0), Some(1), None]);
    }

    #[test]
    fn columns_match_direct_evaluation_and_argmin_matches_assign() {
        for metric in [
            DistanceKind::Manhattan,
            DistanceKind::Euclidean,
            DistanceKind::Chebyshev,
        ] {
            let points = random_points(600, 5, 23);
            let medoids = vec![2usize, 170, 444];
            let dims = vec![vec![0, 1], vec![2, 3], vec![1, 4]];
            let cols: Vec<Vec<f64>> = blocks(points.rows()).into_iter().fold(
                vec![Vec::new(); medoids.len()],
                |mut acc, (lo, hi)| {
                    for (full, part) in acc
                        .iter_mut()
                        .zip(columns_block(&points, metric, &medoids, &dims, lo, hi))
                    {
                        full.extend(part);
                    }
                    acc
                },
            );
            for (s, (&m, di)) in medoids.iter().zip(&dims).enumerate() {
                for (p, &got) in cols[s].iter().enumerate() {
                    let direct = metric.eval_segmental(points.row(p), points.row(m), di);
                    assert_eq!(got.to_bits(), direct.to_bits(), "{metric:?} {s} {p}");
                }
            }
            let refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
            let via_cols = argmin_columns(&refs, points.rows());
            let direct = crate::assign::assign_points(&points, &medoids, &dims, metric);
            assert_eq!(via_cols, direct, "{metric:?}");
        }
    }

    #[test]
    fn argmin_columns_nan_rows_fall_to_slot_zero() {
        let a = [f64::NAN, 1.0, f64::NAN];
        let b = [f64::NAN, 2.0, 0.5];
        let out = argmin_columns(&[&a, &b], 3);
        // Row 0: all NaN -> slot 0. Row 1: 1.0 < 2.0 -> slot 0.
        // Row 2: NaN never beats 0.5 -> slot 1.
        assert_eq!(out, vec![0, 0, 1]);
    }

    /// A medoid with non-finite coordinates has a NaN distance to every
    /// point (including itself), so its locality would come out empty;
    /// the merge falls back to the singleton {mᵢ} with a zero `X` row.
    #[test]
    fn merge_fused_empty_locality_falls_back_to_medoid_singleton() {
        let rows: Vec<[f64; 2]> = vec![[0.0, 0.0], [f64::NAN, 1.0], [2.0, 2.0]];
        let points = Matrix::from_rows(&rows, 2);
        let medoids = vec![0usize, 1];
        let metric = DistanceKind::Manhattan;
        let deltas = crate::locality::medoid_deltas(&points, &medoids, metric);
        let partials = vec![fused_block(&points, metric, &medoids, &deltas, 0, 3)];
        let (locs, x) = merge_fused(partials, &medoids, 2);
        assert_eq!(locs[1], vec![1], "empty locality becomes {{medoid}}");
        assert_eq!(x[1], vec![0.0, 0.0], "fallback X row is pinned to zero");
        assert!(!locs[0].is_empty());
    }

    #[test]
    fn cluster_x_skips_outliers() {
        let rows: Vec<[f64; 2]> = vec![[0.0, 0.0], [1.0, 3.0], [900.0, 900.0]];
        let points = Matrix::from_rows(&rows, 2);
        let assignment = vec![Some(0), Some(0), None];
        let partial = cluster_x_block(&points, &[0], &assignment, 0, 3);
        let x = merge_cluster_x(vec![partial], &[2], 2);
        // Members {0, 1}: mean |diff| = (0 + 1)/2 and (0 + 3)/2.
        assert_eq!(x, vec![vec![0.5, 1.5]]);
    }

    /// The pruned fused kernel must be **bit-identical** to the plain
    /// one — members, order, and X sums — across all metrics, and
    /// actually prune something on clustered data.
    #[test]
    fn fused_block_pruned_is_bit_identical_to_plain() {
        for metric in [
            DistanceKind::Manhattan,
            DistanceKind::Euclidean,
            DistanceKind::Chebyshev,
        ] {
            for seed in [11u64, 29] {
                let points = random_points(900, 7, seed);
                let medoids = vec![3usize, 99, 402, 777];
                let deltas = medoid_deltas(&points, &medoids, metric);
                let index = std::sync::Arc::new(NeighborIndex::build(&points, metric));
                let ctx = FusedPruneCtx::new(index, &points, &medoids, metric);
                let mut stats = PruneStats::default();
                for (lo, hi) in blocks(points.rows()) {
                    let plain = fused_block(&points, metric, &medoids, &deltas, lo, hi);
                    let pruned = fused_block_pruned(
                        &points, metric, &medoids, &deltas, &ctx, lo, hi, &mut stats, None,
                    );
                    assert_eq!(plain.locs, pruned.locs, "{metric:?} seed {seed}");
                    for (a, b) in plain.xsums.iter().zip(&pruned.xsums) {
                        let ab: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                        let bb: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                        assert_eq!(ab, bb, "{metric:?} seed {seed}: X bits moved");
                    }
                }
                assert!(
                    stats.range_sketch_pruned + stats.range_triangle_pruned > 0,
                    "{metric:?} seed {seed}: range pruning inert"
                );
            }
        }
    }

    /// The pruned assignment kernels must reproduce the plain winners
    /// (and X sums, and outlier flags) bit for bit.
    #[test]
    fn pruned_assignment_kernels_are_bit_identical_to_plain() {
        for metric in [
            DistanceKind::Manhattan,
            DistanceKind::Euclidean,
            DistanceKind::Chebyshev,
        ] {
            // Dimension sets must reach NEAREST_MIN_DIMS for the
            // bounded path to engage at all; a couple of small sets
            // exercise the mixed small/large case.
            let points = random_points(800, 12, 31);
            let medoids = vec![2usize, 170, 444, 650];
            let dims = vec![
                (0..10).collect::<Vec<_>>(),
                (1..11).collect(),
                (2..12).collect(),
                vec![0, 5],
            ];
            let spheres = crate::refine::spheres_of_influence(&points, &medoids, &dims, metric);
            let mut stats = PruneStats::default();
            for (lo, hi) in blocks(points.rows()) {
                assert_eq!(
                    assign_block(&points, metric, &medoids, &dims, lo, hi),
                    assign_block_pruned(
                        &points, metric, &medoids, &dims, lo, hi, &mut stats, None, None
                    ),
                    "{metric:?} assign"
                );
                let plain = assign_x_block(&points, metric, &medoids, &dims, lo, hi);
                let pruned = assign_x_block_pruned(
                    &points, metric, &medoids, &dims, lo, hi, &mut stats, None, None,
                );
                assert_eq!(plain.assignment, pruned.assignment, "{metric:?} assign_x");
                for (a, b) in plain.xsums.iter().zip(&pruned.xsums) {
                    let ab: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
                    let bb: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(ab, bb, "{metric:?} assign_x X bits moved");
                }
                assert_eq!(
                    refine_assign_block(&points, metric, &medoids, &dims, &spheres, lo, hi),
                    refine_assign_block_pruned(
                        &points, metric, &medoids, &dims, &spheres, lo, hi, &mut stats, None
                    ),
                    "{metric:?} refine"
                );
            }
            assert!(stats.nearest_pruned > 0, "{metric:?}: prefix pruning inert");
        }
    }

    /// Pruned kernels preserve the NaN semantics of the plain path (a
    /// NaN-coordinate medoid never wins, all-NaN rows land on slot 0).
    #[test]
    fn pruned_kernels_preserve_nan_semantics() {
        let rows: Vec<[f64; 2]> = vec![[0.0, 0.0], [f64::NAN, 1.0], [2.0, 2.0], [50.0, 50.0]];
        let points = Matrix::from_rows(&rows, 2);
        let medoids = vec![1usize, 3];
        let dims = vec![vec![0, 1], vec![0, 1]];
        let metric = DistanceKind::Manhattan;
        let mut stats = PruneStats::default();
        assert_eq!(
            assign_block(&points, metric, &medoids, &dims, 0, 4),
            assign_block_pruned(&points, metric, &medoids, &dims, 0, 4, &mut stats, None, None),
        );
        let deltas = medoid_deltas(&points, &medoids, metric);
        let index = std::sync::Arc::new(NeighborIndex::build(&points, metric));
        let ctx = FusedPruneCtx::new(index, &points, &medoids, metric);
        let plain = fused_block(&points, metric, &medoids, &deltas, 0, 4);
        let pruned = fused_block_pruned(
            &points, metric, &medoids, &deltas, &ctx, 0, 4, &mut stats, None,
        );
        assert_eq!(plain, pruned);
    }

    /// Matrices chosen to stress the bit-identity contract: exact
    /// distance ties, duplicated rows, and mixed 1e±9 magnitudes where
    /// any reassociation of the accumulation order would show up.
    fn tricky_matrices() -> Vec<(&'static str, Matrix)> {
        let mut rng = StdRng::seed_from_u64(77);
        let (n, d) = (1_400usize, 6usize); // spans two canonical tiles
        let tie: Vec<f64> = (0..n * d)
            .map(|_| f64::from(rng.random_range(0u32..6)))
            .collect();
        let protos: Vec<Vec<f64>> = (0..40)
            .map(|_| (0..d).map(|_| rng.random_range(0.0..10.0)).collect())
            .collect();
        let dup: Vec<f64> = (0..n).flat_map(|p| protos[p % 40].clone()).collect();
        let huge: Vec<f64> = (0..n * d)
            .map(|i| {
                let base: f64 = rng.random_range(-1.0..1.0);
                match i % 3 {
                    0 => base * 1.0e9,
                    1 => base * 1.0e-9,
                    _ => base,
                }
            })
            .collect();
        vec![
            ("tie-heavy", Matrix::from_vec(tie, n, d)),
            ("duplicate-rows", Matrix::from_vec(dup, n, d)),
            ("mixed-magnitude", Matrix::from_vec(huge, n, d)),
        ]
    }

    fn assert_bits(a: &[Vec<f64>], b: &[Vec<f64>], ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}: shape");
        for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
            assert_eq!(ra.len(), rb.len(), "{ctx}: row {i} shape");
            for (j, (x, y)) in ra.iter().zip(rb).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: [{i}][{j}] {x:e} vs {y:e}");
            }
        }
    }

    /// Every columnar twin must be bit-identical to its row-major
    /// original — localities, X sums, assignments, distance columns,
    /// refine outcomes — across all three metrics on tie-heavy,
    /// duplicate-row, and mixed-magnitude matrices.
    #[test]
    fn columnar_kernels_are_bit_identical_to_row_major() {
        for (name, points) in tricky_matrices() {
            let cb = ColumnarBlocks::build(&points, false);
            let medoids = vec![3usize, 700, 1_200];
            let dims = vec![vec![0, 1, 2], vec![1, 3], vec![0, 4, 5]];
            for metric in [
                DistanceKind::Manhattan,
                DistanceKind::Euclidean,
                DistanceKind::Chebyshev,
            ] {
                let deltas = medoid_deltas(&points, &medoids, metric);
                let spheres: Vec<f64> = deltas.iter().map(|d| d * 0.8).collect();
                let refined: Vec<Option<usize>> = blocks(points.rows())
                    .into_iter()
                    .flat_map(|(lo, hi)| {
                        refine_assign_block(&points, metric, &medoids, &dims, &spheres, lo, hi)
                    })
                    .collect();
                for (lo, hi) in blocks(points.rows()) {
                    let ctx = format!("{name}/{metric:?}/[{lo},{hi})");
                    let t = cb.tile(lo, hi).unwrap();
                    let fa = fused_block(&points, metric, &medoids, &deltas, lo, hi);
                    let fb = fused_block_columnar(&t, &points, metric, &medoids, &deltas, lo, hi);
                    assert_eq!(fa.locs, fb.locs, "{ctx}: fused locs");
                    assert_bits(&fa.xsums, &fb.xsums, &format!("{ctx}: fused X"));
                    assert_eq!(
                        assign_block(&points, metric, &medoids, &dims, lo, hi),
                        assign_block_columnar(&t, &points, metric, &medoids, &dims, lo, hi, None),
                        "{ctx}: assign"
                    );
                    let xa = assign_x_block(&points, metric, &medoids, &dims, lo, hi);
                    let xb =
                        assign_x_block_columnar(&t, &points, metric, &medoids, &dims, lo, hi, None);
                    assert_eq!(xa.assignment, xb.assignment, "{ctx}: assign+X winners");
                    assert_bits(&xa.xsums, &xb.xsums, &format!("{ctx}: assign+X sums"));
                    assert_bits(
                        &columns_block(&points, metric, &medoids, &dims, lo, hi),
                        &columns_block_columnar(&t, &points, metric, &medoids, &dims, lo, hi),
                        &format!("{ctx}: columns"),
                    );
                    assert_eq!(
                        refine_assign_block(&points, metric, &medoids, &dims, &spheres, lo, hi),
                        refine_assign_block_columnar(
                            &t, &points, metric, &medoids, &dims, &spheres, lo, hi,
                        ),
                        "{ctx}: refine"
                    );
                    assert_bits(
                        &cluster_x_block(&points, &medoids, &refined, lo, hi),
                        &cluster_x_block_columnar(&t, &points, &medoids, &refined, lo, hi),
                        &format!("{ctx}: cluster X"),
                    );
                }
            }
        }
    }

    /// The `f32` screen must never change a winner: gated assignment
    /// equals the plain kernels element-wise, the counters balance, and
    /// the screen actually engages for Manhattan/Chebyshev while
    /// Euclidean falls through to the exact columnar path.
    #[test]
    fn fast_gated_assignment_matches_plain_winners_exactly() {
        for (name, points) in tricky_matrices() {
            let cb = ColumnarBlocks::build(&points, true);
            let medoids = vec![3usize, 700, 1_200];
            let dims = vec![vec![0, 1, 2], vec![1, 3], vec![0, 4, 5]];
            for metric in [
                DistanceKind::Manhattan,
                DistanceKind::Euclidean,
                DistanceKind::Chebyshev,
            ] {
                let mut fs = FastMathStats::default();
                for (lo, hi) in blocks(points.rows()) {
                    let ctx = format!("{name}/{metric:?}/[{lo},{hi})");
                    let t = cb.tile(lo, hi).unwrap();
                    assert_eq!(
                        assign_block(&points, metric, &medoids, &dims, lo, hi),
                        assign_block_columnar(
                            &t,
                            &points,
                            metric,
                            &medoids,
                            &dims,
                            lo,
                            hi,
                            Some(&mut fs),
                        ),
                        "{ctx}: gated assign"
                    );
                    let xa = assign_x_block(&points, metric, &medoids, &dims, lo, hi);
                    let xb = assign_x_block_columnar(
                        &t,
                        &points,
                        metric,
                        &medoids,
                        &dims,
                        lo,
                        hi,
                        Some(&mut fs),
                    );
                    assert_eq!(xa.assignment, xb.assignment, "{ctx}: gated assign+X");
                    assert_bits(&xa.xsums, &xb.xsums, &format!("{ctx}: gated assign+X sums"));
                }
                assert_eq!(
                    fs.screened,
                    fs.excluded + fs.verified,
                    "{name}/{metric:?}: counter balance"
                );
                if metric == DistanceKind::Euclidean {
                    assert_eq!(fs.screened, 0, "{name}: Euclidean must not be screened");
                } else {
                    assert!(fs.screened > 0, "{name}/{metric:?}: screen never engaged");
                }
            }
        }
    }

    /// NaN rows fall through the `f32` screen to the exact path and
    /// keep the plain kernels' NaN semantics.
    #[test]
    fn fast_gate_preserves_nan_semantics() {
        let rows: Vec<[f64; 2]> = vec![[0.0, 0.0], [f64::NAN, 1.0], [2.0, 2.0], [50.0, 50.0]];
        let points = Matrix::from_rows(&rows, 2);
        let cb = ColumnarBlocks::build(&points, true);
        let t = cb.tile(0, 4).unwrap();
        let medoids = vec![1usize, 3];
        let dims = vec![vec![0, 1], vec![0, 1]];
        for metric in [DistanceKind::Manhattan, DistanceKind::Chebyshev] {
            let mut fs = FastMathStats::default();
            assert_eq!(
                assign_block(&points, metric, &medoids, &dims, 0, 4),
                assign_block_columnar(&t, &points, metric, &medoids, &dims, 0, 4, Some(&mut fs),),
                "{metric:?}"
            );
        }
    }
}
