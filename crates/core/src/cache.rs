//! The cross-round iteration cache ([`RoundCache`]).
//!
//! PROCLUS's hill climb replaces only the *bad* medoids between rounds
//! (Figure 2), yet the straightforward engine recomputes every
//! locality, dimension average, distance, and cluster sum for all `k`
//! medoids every round. This module caches the per-medoid round state
//! and recomputes only what a swap actually touched, **bit-identically**
//! — `fit` with the cache on and off produce byte-identical event
//! streams and models (pinned by `tests/determinism.rs` and the
//! cached-vs-uncached invariant in `tests/invariants.rs`).
//!
//! # What is cached, and its invalidation key
//!
//! * **Fused locality + `X` slots** — for each medoid slot, the
//!   locality `Lᵢ` and the per-dimension average distances `Xᵢⱼ`,
//!   keyed by `(mᵢ, δᵢ)` (the δ value compared *bitwise*). A slot's
//!   fused result depends only on its own medoid and radius: swapping
//!   medoid `j` invalidates slot `j` directly and exactly those slots
//!   whose nearest-other-medoid distance changed — which is precisely a
//!   δ bit-change, since `medoid_deltas` is recomputed (cheaply,
//!   O(k²·d)) every round from the same code path.
//! * **Distance columns** — for each slot, up to two columns of
//!   per-point segmental distances keyed by `(mᵢ, Dᵢ)` (two, because a
//!   round queries each slot under the locality-derived dimensions and
//!   then the cluster-refined ones). A column is a pure per-point
//!   function of its key, so value-keying is exact: the global greedy
//!   dimension allocation may reshuffle another slot's `Dᵢ` after a
//!   swap, and that slot's column then misses and recomputes.
//! * **Cluster-`X` rows** — the per-cluster dimension averages the
//!   inner refinement consumes, keyed by the slot's medoid plus the
//!   cluster's membership (tracked as a diff of the previous round's
//!   assignment — a cluster is touched iff its medoid changed or some
//!   point entered/left it).
//!
//! # Why determinism survives
//!
//! Every recomputation runs the *same block kernels over the same
//! fixed tiling* as the full pass, restricted to the invalidated slots;
//! per-slot results are independent in those kernels (see
//! [`crate::kernel`]), so a cached value and a recomputed one are the
//! same bits. The assignment is rebuilt from columns by
//! [`crate::kernel::argmin_columns`], whose loop is literally the
//! comparison loop of the direct kernels. Logical pool accounting
//! (`pool_dispatches`/`pool_blocks` in `round` events) is booked per
//! *semantic* pass via [`Pool::note_logical_pass`] whether or not any
//! physical work ran, so the event stream carries the same numbers as
//! the uncached engine.
//!
//! Cache effectiveness is observable through the `cache.*` manifest
//! counters and the per-round `cache.medoids_recomputed` gauge — both
//! flow through the measurement channel only, never the event stream.
//!
//! # Composition with the neighbor index
//!
//! The pruning index ([`crate::index`]) composes with the cache at the
//! pool seam, not here: subset recomputes of fused slots go through
//! [`Pool::fused_pass`], which builds a per-pass prune context whenever
//! an index is installed, so invalidated slots enjoy the same pruning
//! as a full pass. Cached *distance columns*, by contrast, are always
//! computed unpruned — a column must be a total function of its
//! `(mᵢ, Dᵢ)` key (every point's distance, reusable under any future
//! incumbent), whereas the nearest-medoid pruning bound is only valid
//! relative to the incumbent of one particular argmin sweep. Hits are
//! strictly cheaper than any pruned recompute, so the two layers never
//! compete.

use crate::pool::Pool;
use std::sync::Arc;

/// Monotone cache-effectiveness counters, exported to the run manifest
/// as `cache.*` (measurement channel only — never the event stream).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Fused locality/`X` slots served from cache.
    pub fused_slot_hits: u64,
    /// Fused locality/`X` slots recomputed after invalidation.
    pub fused_slot_recomputes: u64,
    /// Distance columns served from cache.
    pub column_hits: u64,
    /// Distance columns recomputed after invalidation.
    pub column_recomputes: u64,
    /// Cluster-`X` rows served from cache.
    pub cluster_row_hits: u64,
    /// Cluster-`X` rows recomputed after invalidation.
    pub cluster_row_recomputes: u64,
}

/// One cached fused slot: the locality and `X` row of a `(mᵢ, δᵢ)` pair.
struct FusedSlot {
    medoid: usize,
    delta_bits: u64,
    locs: Vec<usize>,
    x: Vec<f64>,
}

/// One cached distance column for a `(mᵢ, Dᵢ)` pair.
struct ColumnEntry {
    medoid: usize,
    dims: Vec<usize>,
    col: Vec<f64>,
}

/// A cached cluster-`X` row, valid with respect to [`RoundCache::prev_flat`].
struct ClusterRow {
    medoid: usize,
    x: Vec<f64>,
}

/// Columns kept per slot: the two dimension sets a round queries
/// (locality-derived, then cluster-refined).
const COLUMNS_PER_SLOT: usize = 2;

/// Per-fit incremental state for the hill-climbing rounds. Create one
/// per fit (it spans restarts — the value keys make stale state
/// harmless) and route every round's heavy pass through it; disabled
/// ([`Proclus::round_cache`](crate::params::Proclus::round_cache) =
/// `false`) it forwards verbatim to the full pool passes.
pub struct RoundCache {
    enabled: bool,
    fused: Vec<Option<FusedSlot>>,
    columns: Vec<Vec<ColumnEntry>>,
    cluster_rows: Vec<Option<ClusterRow>>,
    /// The assignment produced by the previous `assign_x` call — the
    /// membership baseline the cluster-row diff invalidates against.
    prev_flat: Option<Vec<usize>>,
    stats: CacheStats,
    round_recomputed: u64,
}

impl RoundCache {
    /// A cache for fits with `k` medoid slots. `enabled = false` builds
    /// a pass-through shell (no memory, no counters beyond the
    /// per-round recompute gauge, identical pool behavior to the
    /// pre-cache engine).
    pub fn new(enabled: bool, k: usize) -> Self {
        let slots = if enabled { k } else { 0 };
        RoundCache {
            enabled,
            fused: (0..slots).map(|_| None).collect(),
            columns: (0..slots).map(|_| Vec::new()).collect(),
            cluster_rows: (0..slots).map(|_| None).collect(),
            prev_flat: None,
            stats: CacheStats::default(),
            round_recomputed: 0,
        }
    }

    /// Is incremental caching active?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Cumulative effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Fused slots recomputed since the previous call — the per-round
    /// "medoids recomputed" gauge. With the cache disabled this counts
    /// every slot of every pass (the uncached engine recomputes all).
    pub fn take_round_recomputed(&mut self) -> u64 {
        std::mem::take(&mut self.round_recomputed)
    }

    /// The fused locality + `X` pass, serving unchanged `(mᵢ, δᵢ)`
    /// slots from cache and recomputing the rest in one subset pass.
    /// Output is bit-identical to [`Pool::fused_round`].
    pub fn fused_round(
        &mut self,
        pool: &mut Pool<'_>,
        medoids: &[usize],
        deltas: &[f64],
    ) -> (Vec<Vec<usize>>, Vec<Vec<f64>>) {
        if !self.enabled {
            self.round_recomputed += medoids.len() as u64;
            return pool.fused_round(medoids, deltas);
        }
        pool.note_logical_pass();
        self.grow_to(medoids.len());
        let missing: Vec<usize> = medoids
            .iter()
            .zip(deltas)
            .enumerate()
            .filter(|&(i, (&m, &delta))| {
                !matches!(
                    &self.fused[i],
                    Some(s) if s.medoid == m && s.delta_bits == delta.to_bits()
                )
            })
            .map(|(i, _)| i)
            .collect();
        self.stats.fused_slot_hits += (medoids.len() - missing.len()) as u64;
        self.stats.fused_slot_recomputes += missing.len() as u64;
        self.round_recomputed += missing.len() as u64;
        if !missing.is_empty() {
            let sub_m: Vec<usize> = missing.iter().map(|&i| medoids[i]).collect();
            let sub_d: Vec<f64> = missing.iter().map(|&i| deltas[i]).collect();
            let (locs, x) = pool.fused_pass(&sub_m, &sub_d);
            for ((&slot, li), xi) in missing.iter().zip(locs).zip(x) {
                self.fused[slot] = Some(FusedSlot {
                    medoid: medoids[slot],
                    delta_bits: deltas[slot].to_bits(),
                    locs: li,
                    x: xi,
                });
            }
        }
        let mut locs = Vec::with_capacity(medoids.len());
        let mut x = Vec::with_capacity(medoids.len());
        for slot in self.fused.iter().take(medoids.len()) {
            match slot {
                Some(s) => {
                    locs.push(s.locs.clone());
                    x.push(s.x.clone());
                }
                // Unreachable by construction (every miss was filled
                // above); keep the degenerate shape rather than panic.
                None => {
                    locs.push(Vec::new());
                    x.push(Vec::new());
                }
            }
        }
        (locs, x)
    }

    /// Plain assignment pass via cached distance columns. Bit-identical
    /// to [`Pool::assign`].
    pub fn assign(
        &mut self,
        pool: &mut Pool<'_>,
        medoids: &[usize],
        dims: &[Vec<usize>],
    ) -> Vec<usize> {
        if !self.enabled {
            return pool.assign(medoids, dims);
        }
        pool.note_logical_pass();
        self.assign_via_columns(pool, medoids, dims)
    }

    /// Assignment fused with the per-cluster `X` averages (the inner
    /// refinement's input): assignment from cached columns, cluster
    /// rows diffed against the previous round's membership and
    /// recomputed only where touched. Bit-identical to
    /// [`Pool::assign_x`].
    pub fn assign_x(
        &mut self,
        pool: &mut Pool<'_>,
        medoids: &[usize],
        dims: &[Vec<usize>],
    ) -> (Vec<usize>, Vec<Vec<f64>>) {
        if !self.enabled {
            return pool.assign_x(medoids, dims);
        }
        pool.note_logical_pass();
        let k = medoids.len();
        let flat = self.assign_via_columns(pool, medoids, dims);

        // A cluster's X row is stale iff its membership changed (some
        // point moved in or out — visible in the flat-assignment diff)
        // or its medoid row moved (a swap landed on the slot).
        let mut touched = vec![false; k];
        match &self.prev_flat {
            Some(prev) if prev.len() == flat.len() => {
                for (&a, &b) in prev.iter().zip(&flat) {
                    if a != b {
                        if a < k {
                            touched[a] = true;
                        }
                        touched[b] = true;
                    }
                }
            }
            _ => touched.iter_mut().for_each(|t| *t = true),
        }
        for (i, t) in touched.iter_mut().enumerate() {
            if !matches!(&self.cluster_rows[i], Some(r) if r.medoid == medoids[i]) {
                *t = true;
            }
        }

        let stale: Vec<usize> = (0..k).filter(|&i| touched[i]).collect();
        self.stats.cluster_row_hits += (k - stale.len()) as u64;
        self.stats.cluster_row_recomputes += stale.len() as u64;
        if !stale.is_empty() {
            // Masked assignment: only the stale clusters contribute,
            // re-indexed to the subset's slots. Each recomputed row
            // accumulates the same members in the same block-grouped
            // order as the full fused pass — bit-identical.
            let mut local = vec![usize::MAX; k];
            for (j, &slot) in stale.iter().enumerate() {
                local[slot] = j;
            }
            let masked: Vec<Option<usize>> = flat
                .iter()
                .map(|&a| (local[a] != usize::MAX).then(|| local[a]))
                .collect();
            let sub_m: Vec<usize> = stale.iter().map(|&i| medoids[i]).collect();
            let rows = pool.cluster_x_pass(&sub_m, Arc::new(masked));
            for (&slot, row) in stale.iter().zip(rows) {
                self.cluster_rows[slot] = Some(ClusterRow {
                    medoid: medoids[slot],
                    x: row,
                });
            }
        }
        let x: Vec<Vec<f64>> = self
            .cluster_rows
            .iter()
            .take(k)
            .map(|r| match r {
                Some(r) => r.x.clone(),
                None => Vec::new(), // unreachable: every stale row was filled
            })
            .collect();
        self.prev_flat = Some(flat.clone());
        (flat, x)
    }

    /// Ensure a cached column per slot for `(medoids[i], dims[i])`,
    /// recomputing misses in one subset pass, then assign every point
    /// to its argmin slot.
    fn assign_via_columns(
        &mut self,
        pool: &mut Pool<'_>,
        medoids: &[usize],
        dims: &[Vec<usize>],
    ) -> Vec<usize> {
        let k = medoids.len();
        self.grow_to(k);
        let mut entry: Vec<Option<usize>> = (0..k)
            .map(|i| {
                self.columns[i]
                    .iter()
                    .position(|e| e.medoid == medoids[i] && e.dims == dims[i])
            })
            .collect();
        let missing: Vec<usize> = (0..k).filter(|&i| entry[i].is_none()).collect();
        self.stats.column_hits += (k - missing.len()) as u64;
        self.stats.column_recomputes += missing.len() as u64;
        if !missing.is_empty() {
            let sub_m: Vec<usize> = missing.iter().map(|&i| medoids[i]).collect();
            let sub_d: Vec<Vec<usize>> = missing.iter().map(|&i| dims[i].clone()).collect();
            let cols = pool.distance_columns(&sub_m, &sub_d);
            for (&slot, col) in missing.iter().zip(cols) {
                if self.columns[slot].len() >= COLUMNS_PER_SLOT {
                    self.columns[slot].remove(0);
                }
                self.columns[slot].push(ColumnEntry {
                    medoid: medoids[slot],
                    dims: dims[slot].clone(),
                    col,
                });
                entry[slot] = Some(self.columns[slot].len() - 1);
            }
        }
        let mut refs: Vec<&[f64]> = Vec::with_capacity(k);
        for (i, e) in entry.iter().enumerate() {
            match e.and_then(|e| self.columns[i].get(e)) {
                Some(entry) => refs.push(entry.col.as_slice()),
                // Unreachable: every miss was just filled. Degrade to a
                // direct full pass rather than panic.
                None => return pool.assign(medoids, dims),
            }
        }
        crate::kernel::argmin_columns(&refs, pool.points().rows())
    }

    /// Grow the per-slot tables to at least `k` slots (`run_once` is
    /// called with a fixed `k`, but the cache does not assume it).
    fn grow_to(&mut self, k: usize) {
        while self.fused.len() < k {
            self.fused.push(None);
        }
        while self.columns.len() < k {
            self.columns.push(Vec::new());
        }
        while self.cluster_rows.len() < k {
            self.cluster_rows.push(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locality::medoid_deltas;
    use crate::pool::with_pool;
    use proclus_math::{DistanceKind, Matrix};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Quantized coordinates force plenty of exact distance ties, so the
    /// tie-breaking of every path is exercised, not just the generic
    /// ordering.
    fn tie_heavy_points(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * d)
            .map(|_| f64::from(rng.random_range(0u32..6)))
            .collect();
        Matrix::from_vec(data, n, d)
    }

    fn random_points(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * d).map(|_| rng.random_range(0.0..100.0)).collect();
        Matrix::from_vec(data, n, d)
    }

    /// S1 cross-path equivalence property test: the scalar
    /// `assign_points`, the blocked kernel, the pooled pass, and the
    /// cached column-argmin path must agree bit for bit over seeded
    /// random matrices — including tie-heavy ones where quantized
    /// coordinates make many distances exactly equal — for every
    /// metric and thread count tried.
    #[test]
    fn all_assignment_paths_agree_on_seeded_matrices() {
        for metric in [
            DistanceKind::Manhattan,
            DistanceKind::Euclidean,
            DistanceKind::Chebyshev,
        ] {
            for seed in [1u64, 2, 3] {
                for points in [
                    tie_heavy_points(1500, 5, seed),
                    random_points(1500, 5, seed),
                ] {
                    let medoids = vec![4usize, 600, 1100];
                    let dims = vec![vec![0, 1], vec![1, 2, 3], vec![0, 4]];
                    let scalar = crate::assign::assign_points(&points, &medoids, &dims, metric);
                    let blocked: Vec<usize> = crate::kernel::blocks(points.rows())
                        .into_iter()
                        .flat_map(|(lo, hi)| {
                            crate::kernel::assign_block(&points, metric, &medoids, &dims, lo, hi)
                        })
                        .collect();
                    assert_eq!(scalar, blocked, "{metric:?} seed {seed}: blocked kernel");
                    for threads in [1usize, 4] {
                        let (pooled, cached, cached_again) =
                            with_pool(&points, metric, threads, |pool| {
                                let mut cache = RoundCache::new(true, medoids.len());
                                let pooled = pool.assign(&medoids, &dims);
                                let cached = cache.assign(pool, &medoids, &dims);
                                // Second call is served from cache.
                                let again = cache.assign(pool, &medoids, &dims);
                                assert_eq!(cache.stats().column_hits, 3);
                                (pooled, cached, again)
                            });
                        assert_eq!(scalar, pooled, "{metric:?} seed {seed} t{threads}: pooled");
                        assert_eq!(scalar, cached, "{metric:?} seed {seed} t{threads}: cached");
                        assert_eq!(scalar, cached_again, "{metric:?} seed {seed}: cache hit");
                    }
                }
            }
        }
    }

    /// A swap-style workload: cached rounds must be bit-identical to
    /// uncached rounds while actually hitting the cache.
    #[test]
    fn cached_rounds_match_uncached_rounds_bit_for_bit() {
        let points = random_points(4000, 8, 11);
        let metric = DistanceKind::Manhattan;
        let medoids = vec![10usize, 900, 2100, 3300];
        let total_dims = 12;

        let run_rounds = |cache_on: bool| {
            let mut medoids = medoids.clone();
            with_pool(&points, metric, 1, |pool| {
                let mut cache = RoundCache::new(cache_on, medoids.len());
                let mut out = Vec::new();
                for round in 0..6 {
                    // Swap one slot every other round, like the
                    // bad-medoid step; the quiet rounds re-evaluate an
                    // unchanged vertex (uniform random data reshuffles
                    // every cluster after a swap, so only these rounds
                    // can exercise the cluster-row hit path).
                    if round % 2 == 1 {
                        let slot = round % medoids.len();
                        medoids[slot] = 123 * round + 17;
                    }
                    let deltas = medoid_deltas(&points, &medoids, metric);
                    let (locs, x) = cache.fused_round(pool, &medoids, &deltas);
                    let dims = crate::dims::find_dimensions_from_averages(&x, total_dims, true);
                    let (flat, cx) = cache.assign_x(pool, &medoids, &dims);
                    let dims2 = crate::dims::find_dimensions_from_averages(&cx, total_dims, true);
                    let flat2 = cache.assign(pool, &medoids, &dims2);
                    out.push((locs, x, dims, flat, cx, dims2, flat2));
                }
                (out, cache.stats(), pool.stats(), pool.physical_stats())
            })
        };

        let (uncached, _, logical_a, physical_a) = run_rounds(false);
        let (cached, stats, logical_b, physical_b) = run_rounds(true);
        assert_eq!(uncached, cached, "cached engine diverged");
        assert_eq!(
            logical_a, logical_b,
            "logical pool accounting must not see the cache"
        );
        assert_eq!(
            logical_a, physical_a,
            "uncached engine: physical work equals logical"
        );
        // Physical dispatch counts are not directly comparable: a
        // cached `assign_x` splits into a columns pass plus a masked
        // cluster-X pass (two cheap fan-outs instead of one full one),
        // and a subset recompute still fans over every row block. The
        // savings are per-block (fewer medoid slots per pass), which
        // the wall-clock benchmark measures; here we only require that
        // the cache did not silently run as a pass-through.
        assert_ne!(
            physical_b, logical_b,
            "cached engine must actually skip or split physical passes"
        );
        assert!(
            stats.fused_slot_hits > 0 && stats.column_hits > 0 && stats.cluster_row_hits > 0,
            "workload must exercise the cache: {stats:?}"
        );
    }

    /// Disabled cache is a pass-through: identical results, identical
    /// logical == physical accounting, no cache memory.
    #[test]
    fn disabled_cache_is_a_pass_through() {
        let points = random_points(1200, 4, 5);
        let metric = DistanceKind::Manhattan;
        let medoids = vec![3usize, 800];
        let dims = vec![vec![0, 1], vec![2, 3]];
        let deltas = medoid_deltas(&points, &medoids, metric);
        with_pool(&points, metric, 1, |pool| {
            let mut cache = RoundCache::new(false, medoids.len());
            let direct = pool.fused_round(&medoids, &deltas);
            let via_cache = cache.fused_round(pool, &medoids, &deltas);
            assert_eq!(direct, via_cache);
            assert_eq!(
                pool.assign(&medoids, &dims),
                cache.assign(pool, &medoids, &dims)
            );
            assert_eq!(
                pool.assign_x(&medoids, &dims),
                cache.assign_x(pool, &medoids, &dims)
            );
            assert_eq!(pool.stats(), pool.physical_stats());
            assert_eq!(cache.stats(), CacheStats::default());
            assert_eq!(cache.take_round_recomputed(), medoids.len() as u64);
        });
    }
}
