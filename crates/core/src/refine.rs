//! Refinement phase (paper §2.3).
//!
//! With the best medoid set fixed, redo the dimension computation once
//! using the *clusters* produced by the iterative phase (their point
//! distributions are sharper than the localities), reassign all points
//! to the new dimension sets, and finally mark outliers: a point is an
//! outlier iff for **every** medoid `mᵢ` its segmental distance under
//! `Dᵢ` exceeds `Δᵢ`, the medoid's *sphere of influence*
//! (`Δᵢ = min_{j≠i} d_{Dᵢ}(mᵢ, mⱼ)`).

use crate::dims::{find_dimensions_from_averages, find_dimensions_opt};
use crate::pool::Pool;
use proclus_math::{DistanceKind, Matrix};
use std::sync::Arc;

/// Output of the refinement pass.
#[derive(Clone, Debug)]
pub struct Refined {
    /// Final dimension sets per medoid.
    pub dims: Vec<Vec<usize>>,
    /// Final assignment; `None` marks an outlier.
    pub assignment: Vec<Option<usize>>,
    /// Sphere of influence `Δᵢ` per medoid.
    pub spheres: Vec<f64>,
}

/// Spheres of influence: `Δᵢ = min_{j ≠ i} d_{Dᵢ}(mᵢ, mⱼ)`, taken over
/// the medoids at *non-zero* projected distance from `mᵢ`.
///
/// Note the asymmetry: `Δᵢ` is measured in medoid `i`'s own subspace.
/// With a single medoid, `Δ` is infinite and no point is an outlier.
///
/// # Zero-distance medoids are excluded
///
/// A medoid `mⱼ` that coincides with `mᵢ` in `mᵢ`'s subspace
/// (duplicate data rows, or distinct rows that project onto the same
/// coordinates) would yield `Δᵢ = 0`, and a zero sphere marks every
/// point of cluster `i` except the medoid itself an outlier — the
/// cluster silently collapses. The paper defines `Δᵢ` as the distance
/// to the nearest *other* cluster's center; a coincident medoid
/// carries no locality information at all, so — consistent with the
/// empty-locality fallback of the iterative phase (`Lᵢ = {mᵢ}` when no
/// point is strictly within `δᵢ`) — such medoids are skipped. When
/// *every* other medoid coincides, `Δᵢ` stays infinite and medoid `i`
/// degenerates to the single-medoid rule (no point is its outlier),
/// rather than every point becoming one.
pub fn spheres_of_influence(
    points: &Matrix,
    medoids: &[usize],
    dims: &[Vec<usize>],
    metric: DistanceKind,
) -> Vec<f64> {
    let k = medoids.len();
    let mut spheres = vec![f64::INFINITY; k];
    for i in 0..k {
        for j in 0..k {
            if i == j {
                continue;
            }
            let d = metric.eval_segmental(points.row(medoids[i]), points.row(medoids[j]), &dims[i]);
            if d > 0.0 && d < spheres[i] {
                spheres[i] = d;
            }
        }
    }
    spheres
}

/// Run the refinement phase.
///
/// `iterative_clusters` are the member lists produced by the last
/// assignment of the iterative phase (used as the dimension reference
/// sets, replacing the localities); `total_dims` is `k·l`.
pub fn refine(
    points: &Matrix,
    medoids: &[usize],
    iterative_clusters: &[Vec<usize>],
    total_dims: usize,
    metric: DistanceKind,
) -> Refined {
    refine_opt(
        points,
        medoids,
        iterative_clusters,
        total_dims,
        metric,
        true,
    )
}

/// [`refine`] with FindDimensions standardization optional (see
/// [`crate::dims::find_dimensions_opt`]).
pub fn refine_opt(
    points: &Matrix,
    medoids: &[usize],
    iterative_clusters: &[Vec<usize>],
    total_dims: usize,
    metric: DistanceKind,
    standardize: bool,
) -> Refined {
    // 1. Recompute dimensions from the cluster distributions.
    let dims = find_dimensions_opt(points, medoids, iterative_clusters, total_dims, standardize);

    // 2. Spheres of influence under the new dimension sets.
    let spheres = spheres_of_influence(points, medoids, &dims, metric);

    // 3. Reassign points; a point beyond every sphere is an outlier.
    let mut assignment = Vec::with_capacity(points.rows());
    for p in 0..points.rows() {
        let row = points.row(p);
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        let mut inside_any = false;
        for (i, (&m, di)) in medoids.iter().zip(&dims).enumerate() {
            let dist = metric.eval_segmental(row, points.row(m), di);
            if dist <= spheres[i] {
                inside_any = true;
            }
            if dist < best_dist {
                best_dist = dist;
                best = i;
            }
        }
        assignment.push(inside_any.then_some(best));
    }

    Refined {
        dims,
        assignment,
        spheres,
    }
}

/// [`refine_opt`] running its two O(N·d) passes (cluster-based `X`
/// accumulation and the final reassignment) through the per-fit worker
/// pool. This is the path [`crate::iterate`] takes; results are
/// bit-identical for every thread count (see [`crate::kernel`]).
pub fn refine_with_pool(
    pool: &mut Pool<'_>,
    medoids: &[usize],
    iterative_clusters: &[Vec<usize>],
    total_dims: usize,
    standardize: bool,
) -> Refined {
    let points = pool.points();
    let metric = pool.metric();

    // 1. Recompute dimensions from the cluster distributions. The
    //    member lists become an assignment vector so a blocked sweep
    //    can accumulate every cluster's X sums in one pass.
    let mut assignment: Vec<Option<usize>> = vec![None; points.rows()];
    for (i, members) in iterative_clusters.iter().enumerate() {
        for &p in members {
            assignment[p] = Some(i);
        }
    }
    let x = pool.cluster_x(medoids, Arc::new(assignment));
    let dims = find_dimensions_from_averages(&x, total_dims, standardize);

    // 2. Spheres of influence under the new dimension sets (O(k²·l),
    //    stays on the coordinating thread).
    let spheres = spheres_of_influence(pool.points(), medoids, &dims, metric);

    // 3. Reassign points; a point beyond every sphere is an outlier.
    let assignment = pool.refine_assign(medoids, &dims, &spheres);

    Refined {
        dims,
        assignment,
        spheres,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two obvious projected clusters and one far-away point.
    fn toy() -> (Matrix, Vec<usize>, Vec<Vec<usize>>) {
        let rows: Vec<[f64; 3]> = vec![
            // Cluster around (0, 0, *) on dims {0, 1}.
            [0.0, 0.0, 10.0],
            [0.5, 0.2, 80.0],
            [0.1, 0.4, 40.0],
            // Cluster around (*, 50, 50) on dims {1, 2}.
            [90.0, 50.0, 50.0],
            [10.0, 50.4, 50.2],
            [55.0, 49.8, 49.9],
            // Outlier far from everything in every subspace.
            [500.0, 500.0, 500.0],
        ];
        let m = Matrix::from_rows(&rows, 3);
        let medoids = vec![0usize, 3];
        let clusters = vec![vec![0, 1, 2], vec![3, 4, 5]];
        (m, medoids, clusters)
    }

    #[test]
    fn spheres_use_own_dimension_sets() {
        let m = Matrix::from_rows(&[[0.0, 0.0], [10.0, 2.0]], 2);
        let spheres =
            spheres_of_influence(&m, &[0, 1], &[vec![0], vec![1]], DistanceKind::Manhattan);
        assert_eq!(spheres, vec![10.0, 2.0]);
    }

    #[test]
    fn single_medoid_sphere_is_infinite() {
        let m = Matrix::from_rows(&[[0.0]], 1);
        let spheres = spheres_of_influence(&m, &[0], &[vec![0]], DistanceKind::Manhattan);
        assert_eq!(spheres, vec![f64::INFINITY]);
    }

    #[test]
    fn refine_recovers_dimensions_and_outlier() {
        let (m, medoids, clusters) = toy();
        let refined = refine(&m, &medoids, &clusters, 4, DistanceKind::Manhattan);
        assert_eq!(refined.dims[0], vec![0, 1]);
        assert_eq!(refined.dims[1], vec![1, 2]);
        // The far point is an outlier.
        assert_eq!(refined.assignment[6], None);
        // Cluster points keep their homes.
        for p in 0..3 {
            assert_eq!(refined.assignment[p], Some(0), "point {p}");
        }
        for p in 3..6 {
            assert_eq!(refined.assignment[p], Some(1), "point {p}");
        }
    }

    /// The outlier rule decouples "inside some sphere" from "nearest
    /// medoid": a point inside medoid 0's sphere of influence but
    /// strictly closer to medoid 1 (whose sphere it is *outside*) is
    /// not an outlier and goes to medoid 1 — the paper assigns
    /// non-outliers to the closest medoid, full stop.
    #[test]
    fn inside_one_sphere_but_nearest_to_another_medoid() {
        // m0 = (0,0) on dims {0}; m1 = (10,3) on dims {1}.
        let m = Matrix::from_rows(&[[0.0, 0.0], [10.0, 3.0], [6.0, 7.0], [100.0, 100.0]], 2);
        let medoids = [0usize, 1];
        let dims = vec![vec![0], vec![1]];
        let metric = DistanceKind::Manhattan;
        let spheres = spheres_of_influence(&m, &medoids, &dims, metric);
        // Δ0 = d_{D0}(m0, m1) = 10; Δ1 = d_{D1}(m1, m0) = 3.
        assert_eq!(spheres, vec![10.0, 3.0]);
        let assignment = crate::pool::with_pool(&m, metric, 1, |pool| {
            pool.refine_assign(&medoids, &dims, &spheres)
        });
        // Point 2 = (6,7): distance 6 to m0 (inside Δ0 = 10) but
        // distance 4 to m1 (outside Δ1 = 3). Non-outlier, assigned to
        // the *nearest* medoid m1, not the sphere owner m0.
        assert_eq!(assignment[2], Some(1));
        // The far point is outside both spheres: outlier.
        assert_eq!(assignment[3], None);
        // Each medoid stays home.
        assert_eq!(assignment[0], Some(0));
        assert_eq!(assignment[1], Some(1));
    }

    /// Regression: duplicate (or subspace-coincident) medoids used to
    /// produce `Δᵢ = 0`, which marked every cluster point except the
    /// medoid itself an outlier. Zero projected distances are now
    /// excluded, so a fully-duplicated medoid pair degenerates to the
    /// single-medoid rule (infinite spheres, no outliers) instead of
    /// collapsing both clusters.
    #[test]
    fn coincident_medoids_do_not_collapse_spheres() {
        // Rows 0 and 1 are byte-identical; rows 2..5 form one tight
        // group around them.
        let rows: Vec<[f64; 2]> = vec![[5.0, 5.0], [5.0, 5.0], [5.5, 5.2], [4.8, 5.1], [5.1, 4.7]];
        let m = Matrix::from_rows(&rows, 2);
        let medoids = [0usize, 1];
        let dims = vec![vec![0, 1], vec![0, 1]];
        let metric = DistanceKind::Manhattan;

        let spheres = spheres_of_influence(&m, &medoids, &dims, metric);
        assert_eq!(spheres, vec![f64::INFINITY, f64::INFINITY]);

        // With the old zero spheres, points 2..5 were all outliers.
        // Now every point lands in a cluster (ties to the lower index).
        let refined = refine(&m, &medoids, &[vec![0, 2, 3], vec![1, 4]], 4, metric);
        assert!(
            refined.assignment.iter().all(|a| a.is_some()),
            "coincident medoids must not outlier the whole dataset: {:?}",
            refined.assignment
        );

        // Mixed case: a third, genuinely distinct medoid still bounds
        // the duplicated pair's spheres by its own non-zero distance.
        let rows: Vec<[f64; 2]> = vec![[0.0, 0.0], [0.0, 0.0], [10.0, 0.0]];
        let m = Matrix::from_rows(&rows, 2);
        let spheres = spheres_of_influence(
            &m,
            &[0, 1, 2],
            &[vec![0], vec![0], vec![0]],
            DistanceKind::Manhattan,
        );
        assert_eq!(spheres, vec![10.0, 10.0, 10.0]);
    }

    #[test]
    fn refine_with_one_medoid_assigns_everything() {
        let rows: Vec<[f64; 2]> = vec![[0.0, 0.0], [1.0, 1.0], [900.0, 900.0]];
        let m = Matrix::from_rows(&rows, 2);
        let refined = refine(&m, &[0], &[vec![0, 1, 2]], 2, DistanceKind::Manhattan);
        assert!(refined.assignment.iter().all(|a| *a == Some(0)));
        assert_eq!(refined.spheres, vec![f64::INFINITY]);
    }
}
