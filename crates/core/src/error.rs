//! Error type for PROCLUS runs.

use std::error::Error;
use std::fmt;

/// Reasons a [`Proclus::fit`](crate::Proclus::fit) call can fail.
#[derive(Clone, Debug, PartialEq)]
pub enum ProclusError {
    /// The parameter combination is unusable (message explains why).
    InvalidParameters(String),
    /// The dataset has fewer points than the requested cluster count.
    TooFewPoints {
        /// Minimum number of points required.
        needed: usize,
        /// Points actually supplied.
        got: usize,
    },
    /// The dataset dimensionality cannot support the requested average
    /// cluster dimensionality.
    DimensionalityTooLow {
        /// Dimensionality of the supplied data.
        d: usize,
        /// The requested average dimensions per cluster.
        l: f64,
    },
    /// The dataset cannot support a meaningful fit at all: fewer
    /// fully-finite rows than clusters requested (e.g. NaN/∞-riddled
    /// data), so no piercing medoid set can exist.
    DegenerateData {
        /// Why the data is unusable.
        reason: String,
    },
    /// Every cluster of the best model ended up empty: the hill climb
    /// and refinement could not keep a single point assigned.
    ClusterCollapse {
        /// Hill-climbing rounds executed before the collapse.
        rounds: usize,
    },
    /// No restart produced a usable model within the round budget.
    NonConvergence {
        /// Restarts attempted.
        restarts: usize,
    },
}

impl fmt::Display for ProclusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProclusError::InvalidParameters(msg) => {
                write!(f, "invalid PROCLUS parameters: {msg}")
            }
            ProclusError::TooFewPoints { needed, got } => write!(
                f,
                "dataset has {got} points but at least {needed} are required"
            ),
            ProclusError::DimensionalityTooLow { d, l } => write!(
                f,
                "data dimensionality {d} cannot host an average of {l} \
                 dimensions per cluster (need 2 <= l <= d)"
            ),
            ProclusError::DegenerateData { reason } => {
                write!(f, "degenerate data: {reason}")
            }
            ProclusError::ClusterCollapse { rounds } => write!(
                f,
                "cluster collapse: every cluster ended up empty after \
                 {rounds} hill-climbing rounds"
            ),
            ProclusError::NonConvergence { restarts } => write!(
                f,
                "non-convergence: none of {restarts} restarts produced a \
                 usable model"
            ),
        }
    }
}

impl Error for ProclusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ProclusError::TooFewPoints { needed: 5, got: 3 };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('5'));
        let e = ProclusError::DimensionalityTooLow { d: 4, l: 9.0 };
        assert!(e.to_string().contains('4'));
        let e = ProclusError::InvalidParameters("k must be positive".into());
        assert!(e.to_string().contains("k must be positive"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error>(_: &E) {}
        assert_err(&ProclusError::InvalidParameters(String::new()));
    }

    #[test]
    fn robustness_variants_display() {
        let e = ProclusError::DegenerateData {
            reason: "only 1 finite row for k = 3".into(),
        };
        assert!(e.to_string().contains("degenerate"));
        let e = ProclusError::ClusterCollapse { rounds: 12 };
        assert!(e.to_string().contains("12"));
        let e = ProclusError::NonConvergence { restarts: 5 };
        assert!(e.to_string().contains('5'));
    }
}
