//! Error type for PROCLUS runs.

use std::error::Error;
use std::fmt;

/// Reasons a [`Proclus::fit`](crate::Proclus::fit) call can fail.
#[derive(Clone, Debug, PartialEq)]
pub enum ProclusError {
    /// The parameter combination is unusable (message explains why).
    InvalidParameters(String),
    /// The dataset has fewer points than the requested cluster count.
    TooFewPoints {
        /// Minimum number of points required.
        needed: usize,
        /// Points actually supplied.
        got: usize,
    },
    /// The dataset dimensionality cannot support the requested average
    /// cluster dimensionality.
    DimensionalityTooLow {
        /// Dimensionality of the supplied data.
        d: usize,
        /// The requested average dimensions per cluster.
        l: f64,
    },
}

impl fmt::Display for ProclusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProclusError::InvalidParameters(msg) => {
                write!(f, "invalid PROCLUS parameters: {msg}")
            }
            ProclusError::TooFewPoints { needed, got } => write!(
                f,
                "dataset has {got} points but at least {needed} are required"
            ),
            ProclusError::DimensionalityTooLow { d, l } => write!(
                f,
                "data dimensionality {d} cannot host an average of {l} \
                 dimensions per cluster (need 2 <= l <= d)"
            ),
        }
    }
}

impl Error for ProclusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ProclusError::TooFewPoints { needed: 5, got: 3 };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('5'));
        let e = ProclusError::DimensionalityTooLow { d: 4, l: 9.0 };
        assert!(e.to_string().contains('4'));
        let e = ProclusError::InvalidParameters("k must be positive".into());
        assert!(e.to_string().contains("k must be positive"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error>(_: &E) {}
        assert_err(&ProclusError::InvalidParameters(String::new()));
    }
}
