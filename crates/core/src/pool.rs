//! A persistent worker pool for the per-round O(N·k·d) passes.
//!
//! The previous parallel path spawned a fresh set of scoped threads for
//! *every* locality and assignment call — hundreds of spawn/join cycles
//! per fit. This module creates the workers **once per fit** (inside
//! [`with_pool`]) and reuses them across every hill-climbing round,
//! restart, and the refinement phase; per-round jobs flow over
//! channels.
//!
//! # Design
//!
//! * Workers live inside a [`std::thread::scope`] spanning the whole
//!   fit, so they can borrow the point matrix directly — no `unsafe`,
//!   no copying the data (the crate forbids unsafe code).
//! * Work is distributed as fixed-size row blocks
//!   ([`crate::kernel::BLOCK`]); a shared queue lets fast workers steal
//!   the remaining blocks, so an unlucky scheduling of one block never
//!   idles the rest of the pool.
//! * Every block result is tagged with its block index and merged on
//!   the coordinating thread in ascending index order. Together with
//!   the fixed tiling this makes the result **bit-identical for every
//!   thread count** — see [`crate::kernel`] for the argument.
//! * `threads <= 1` (or a dataset smaller than one block) skips the
//!   workers entirely; the serial path runs the *same* block kernels in
//!   the same order, so it is the reference the pooled path is compared
//!   against in the property tests.

use crate::index::{FusedPruneCtx, NeighborIndex, PruneStats};
use crate::kernel::{self, AssignXPartial, FusedPartial};
use crate::layout::{ColumnarBlocks, FastMathStats};
use proclus_math::{DistanceKind, Matrix};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};

/// Owned per-round job data shipped to the workers. Small (O(k·d) plus
/// one `Arc`'d assignment for the refinement pass) — the point matrix
/// itself is borrowed by the workers, never sent.
///
/// The fused task optionally carries a shared [`FusedPruneCtx`], and
/// the assignment-style tasks a `pruned` flag; either engages the
/// pruned kernel twin ([`crate::kernel`]), which is bit-identical to
/// the plain kernel, so the choice never reaches the results — only
/// the [`PruneStats`] riding back with each partial.
enum Task {
    Fused {
        medoids: Arc<Vec<usize>>,
        deltas: Arc<Vec<f64>>,
        ctx: Option<Arc<FusedPruneCtx>>,
    },
    Assign {
        medoids: Arc<Vec<usize>>,
        dims: Arc<Vec<Vec<usize>>>,
        pruned: bool,
    },
    AssignX {
        medoids: Arc<Vec<usize>>,
        dims: Arc<Vec<Vec<usize>>>,
        pruned: bool,
    },
    Columns {
        medoids: Arc<Vec<usize>>,
        dims: Arc<Vec<Vec<usize>>>,
    },
    ClusterX {
        medoids: Arc<Vec<usize>>,
        assignment: Arc<Vec<Option<usize>>>,
    },
    RefineAssign {
        medoids: Arc<Vec<usize>>,
        dims: Arc<Vec<Vec<usize>>>,
        spheres: Arc<Vec<f64>>,
        pruned: bool,
    },
}

/// One unit of work: a task applied to a row block.
struct Job {
    task: Task,
    block: (usize, usize),
    index: usize,
}

/// A block's partial result, matched to the [`Task`] variant.
enum Partial {
    Fused(FusedPartial),
    Assign(Vec<usize>),
    AssignX(AssignXPartial),
    Columns(Vec<Vec<f64>>),
    ClusterX(Vec<Vec<f64>>),
    RefineAssign(Vec<Option<usize>>),
}

impl Task {
    /// Run the task over one row block. The returned [`PruneStats`] are
    /// this block's index-pruning counters (zero for unpruned tasks) —
    /// per-pair decisions depend only on the pair, so the totals are
    /// scheduling-independent even though they ride back with partials.
    fn run(
        &self,
        points: &Matrix,
        metric: DistanceKind,
        layout: Option<&ColumnarBlocks>,
        fast_math: bool,
        lo: usize,
        hi: usize,
    ) -> (Partial, PruneStats, FastMathStats) {
        let mut prune = PruneStats::default();
        let mut fstats = FastMathStats::default();
        // The canonical block ranges always lie within one tile, so a
        // missing tile only happens without a layout — every arm below
        // falls back to the row-major kernel in that case.
        let tile = layout.and_then(|l| l.tile(lo, hi));
        let tile = tile.as_ref();
        let partial = match self {
            Task::Fused {
                medoids,
                deltas,
                ctx,
            } => Partial::Fused(match (ctx, tile) {
                (Some(ctx), _) => kernel::fused_block_pruned(
                    points, metric, medoids, deltas, ctx, lo, hi, &mut prune, tile,
                ),
                (None, Some(t)) => {
                    kernel::fused_block_columnar(t, points, metric, medoids, deltas, lo, hi)
                }
                (None, None) => kernel::fused_block(points, metric, medoids, deltas, lo, hi),
            }),
            Task::Assign {
                medoids,
                dims,
                pruned,
            } => Partial::Assign(if *pruned {
                kernel::assign_block_pruned(
                    points,
                    metric,
                    medoids,
                    dims,
                    lo,
                    hi,
                    &mut prune,
                    tile,
                    fast_math.then_some(&mut fstats),
                )
            } else if let Some(t) = tile {
                kernel::assign_block_columnar(
                    t,
                    points,
                    metric,
                    medoids,
                    dims,
                    lo,
                    hi,
                    fast_math.then_some(&mut fstats),
                )
            } else {
                kernel::assign_block(points, metric, medoids, dims, lo, hi)
            }),
            Task::AssignX {
                medoids,
                dims,
                pruned,
            } => Partial::AssignX(if *pruned {
                kernel::assign_x_block_pruned(
                    points,
                    metric,
                    medoids,
                    dims,
                    lo,
                    hi,
                    &mut prune,
                    tile,
                    fast_math.then_some(&mut fstats),
                )
            } else if let Some(t) = tile {
                kernel::assign_x_block_columnar(
                    t,
                    points,
                    metric,
                    medoids,
                    dims,
                    lo,
                    hi,
                    fast_math.then_some(&mut fstats),
                )
            } else {
                kernel::assign_x_block(points, metric, medoids, dims, lo, hi)
            }),
            Task::Columns { medoids, dims } => Partial::Columns(match tile {
                Some(t) => kernel::columns_block_columnar(t, points, metric, medoids, dims, lo, hi),
                None => kernel::columns_block(points, metric, medoids, dims, lo, hi),
            }),
            Task::ClusterX {
                medoids,
                assignment,
            } => Partial::ClusterX(match tile {
                Some(t) => kernel::cluster_x_block_columnar(t, points, medoids, assignment, lo, hi),
                None => kernel::cluster_x_block(points, medoids, assignment, lo, hi),
            }),
            Task::RefineAssign {
                medoids,
                dims,
                spheres,
                pruned,
            } => Partial::RefineAssign(if *pruned {
                kernel::refine_assign_block_pruned(
                    points, metric, medoids, dims, spheres, lo, hi, &mut prune, tile,
                )
            } else if let Some(t) = tile {
                kernel::refine_assign_block_columnar(
                    t, points, metric, medoids, dims, spheres, lo, hi,
                )
            } else {
                kernel::refine_assign_block(points, metric, medoids, dims, spheres, lo, hi)
            }),
        };
        (partial, prune, fstats)
    }

    fn clone_refs(&self) -> Task {
        match self {
            Task::Fused {
                medoids,
                deltas,
                ctx,
            } => Task::Fused {
                medoids: Arc::clone(medoids),
                deltas: Arc::clone(deltas),
                ctx: ctx.as_ref().map(Arc::clone),
            },
            Task::Assign {
                medoids,
                dims,
                pruned,
            } => Task::Assign {
                medoids: Arc::clone(medoids),
                dims: Arc::clone(dims),
                pruned: *pruned,
            },
            Task::AssignX {
                medoids,
                dims,
                pruned,
            } => Task::AssignX {
                medoids: Arc::clone(medoids),
                dims: Arc::clone(dims),
                pruned: *pruned,
            },
            Task::Columns { medoids, dims } => Task::Columns {
                medoids: Arc::clone(medoids),
                dims: Arc::clone(dims),
            },
            Task::ClusterX {
                medoids,
                assignment,
            } => Task::ClusterX {
                medoids: Arc::clone(medoids),
                assignment: Arc::clone(assignment),
            },
            Task::RefineAssign {
                medoids,
                dims,
                spheres,
                pruned,
            } => Task::RefineAssign {
                medoids: Arc::clone(medoids),
                dims: Arc::clone(dims),
                spheres: Arc::clone(spheres),
                pruned: *pruned,
            },
        }
    }
}

enum Mode {
    /// No workers: blocks run inline, in order, on the calling thread.
    Serial,
    /// Persistent workers consuming from a shared job queue.
    Pooled {
        job_tx: Sender<Job>,
        result_rx: Receiver<(usize, Partial, PruneStats, FastMathStats)>,
    },
}

/// Configuration for [`with_pool_opts`].
#[derive(Clone, Copy, Debug)]
pub struct PoolOptions {
    /// Build the dimension-major [`ColumnarBlocks`] mirror and run
    /// every pass through the columnar kernel twins (bit-identical to
    /// the row-major kernels; on by default). Off is the row-major
    /// baseline the benches and the cross-path property tests compare
    /// against.
    pub columnar: bool,
    /// Also build the `f32` mirror and engage the exactness-gated
    /// prefilter in assignment passes (off by default; requires
    /// `columnar`). Results are bit-identical either way — only the
    /// `fastmath.*` counters and the work saved change.
    pub fast_math: bool,
}

impl Default for PoolOptions {
    fn default() -> Self {
        Self {
            columnar: true,
            fast_math: false,
        }
    }
}

/// Work counters maintained by the pool.
///
/// The pool keeps two of these with different contracts:
///
/// * **Logical** stats count *semantic* passes — one per
///   `fused_round`/`assign`/… as the uncached engine would dispatch
///   them, always over every row block. They are **deterministic**: a
///   pure function of `(params, data, seed)`, identical for every
///   thread count *and* for the cached and uncached engines (the
///   [`crate::cache::RoundCache`] books a full logical pass even when
///   it serves the result from cache). Safe to embed in the trace
///   event stream, and `round` events do.
/// * **Physical** stats count the fan-outs that actually ran, which the
///   cache shrinks (a pass fully served from cache dispatches
///   nothing). Scheduling-independent too, but *engine*-dependent, so
///   they go only to the run-manifest counters, never the event
///   stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Fan-out passes executed (one per `fused_round`/`assign`/…).
    pub dispatches: u64,
    /// Row blocks processed across those passes.
    pub blocks: u64,
}

impl PoolStats {
    fn diff(self, earlier: PoolStats) -> PoolStats {
        PoolStats {
            dispatches: self.dispatches - earlier.dispatches,
            blocks: self.blocks - earlier.blocks,
        }
    }
}

/// Handle to the per-fit worker pool (or its serial stand-in). Obtained
/// via [`with_pool`]; all heavy passes of the fit go through it.
pub struct Pool<'env> {
    points: &'env Matrix,
    metric: DistanceKind,
    mode: Mode,
    workers: usize,
    stats: PoolStats,
    physical: PoolStats,
    round_mark: PoolStats,
    queue_high_water: u64,
    /// The per-fit neighbor index; `Some` engages the pruned kernel
    /// twins in every fused/assign/refine pass.
    index: Option<Arc<NeighborIndex>>,
    /// Cumulative pruning counters across all passes (manifest-only —
    /// see [`crate::index::PruneStats`]).
    prune: PruneStats,
    /// The columnar mirror shared with the workers; `Some` routes every
    /// pass through the columnar kernel twins.
    layout: Option<Arc<ColumnarBlocks>>,
    /// Whether assignment passes engage the `f32` exactness-gated
    /// screen (requires `layout` with a fast mirror).
    fast_math: bool,
    /// Cumulative fast-path counters across all passes (manifest-only).
    fstats: FastMathStats,
    /// Row blocks dispatched with / without the columnar layout
    /// (manifest-only `layout.*` counters).
    columnar_blocks: u64,
    rowmajor_blocks: u64,
}

/// Run `f` with a [`Pool`] over `points`. With `threads > 1` (and at
/// least two blocks of data) the workers are spawned once, live for the
/// whole call, and are joined before this function returns; otherwise
/// `f` gets a serial pool and no threads are ever created.
pub fn with_pool<R>(
    points: &Matrix,
    metric: DistanceKind,
    threads: usize,
    f: impl FnOnce(&mut Pool<'_>) -> R,
) -> R {
    with_pool_opts(points, metric, threads, PoolOptions::default(), f)
}

/// [`with_pool`] with explicit layout/fast-math configuration. The
/// columnar mirror is built once here (one pass over the matrix) and
/// shared read-only with every worker.
pub fn with_pool_opts<R>(
    points: &Matrix,
    metric: DistanceKind,
    threads: usize,
    opts: PoolOptions,
    f: impl FnOnce(&mut Pool<'_>) -> R,
) -> R {
    let layout = opts
        .columnar
        .then(|| Arc::new(ColumnarBlocks::build(points, opts.fast_math)));
    let fast_math = opts.fast_math && opts.columnar;
    let n_blocks = points.rows().div_ceil(kernel::BLOCK);
    // More workers than blocks would never all run; cap keeps the
    // spawn cost proportional to useful parallelism. (Results do not
    // depend on the cap — or on the thread count at all.)
    let workers = threads.min(n_blocks);
    if workers <= 1 {
        let mut pool = Pool {
            points,
            metric,
            mode: Mode::Serial,
            workers: 0,
            stats: PoolStats::default(),
            physical: PoolStats::default(),
            round_mark: PoolStats::default(),
            queue_high_water: 0,
            index: None,
            prune: PruneStats::default(),
            layout,
            fast_math,
            fstats: FastMathStats::default(),
            columnar_blocks: 0,
            rowmajor_blocks: 0,
        };
        return f(&mut pool);
    }
    std::thread::scope(|s| {
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) = mpsc::channel::<(usize, Partial, PruneStats, FastMathStats)>();
        for _ in 0..workers {
            let rx = Arc::clone(&job_rx);
            let tx = result_tx.clone();
            let worker_layout = layout.clone();
            s.spawn(move || {
                loop {
                    // Hold the lock only to pop; compute unlocked. A
                    // poisoned lock (a worker died mid-pop) is still a
                    // usable receiver — take it and keep draining.
                    let job = match rx
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .recv()
                    {
                        Ok(job) => job,
                        Err(_) => break, // pool dropped: fit is over
                    };
                    let (lo, hi) = job.block;
                    let (partial, prune, fstats) =
                        job.task
                            .run(points, metric, worker_layout.as_deref(), fast_math, lo, hi);
                    if tx.send((job.index, partial, prune, fstats)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(result_tx);
        let mut pool = Pool {
            points,
            metric,
            mode: Mode::Pooled { job_tx, result_rx },
            workers,
            stats: PoolStats::default(),
            physical: PoolStats::default(),
            round_mark: PoolStats::default(),
            queue_high_water: 0,
            index: None,
            prune: PruneStats::default(),
            layout,
            fast_math,
            fstats: FastMathStats::default(),
            columnar_blocks: 0,
            rowmajor_blocks: 0,
        };
        let out = f(&mut pool);
        // Dropping the pool closes the job channel; every worker's next
        // recv fails and it exits, letting the scope join them.
        drop(pool);
        out
    })
}

impl<'env> Pool<'env> {
    /// The point matrix this pool's workers operate on. The returned
    /// reference outlives the pool borrow, so callers can hold it
    /// across further (mutable) pool calls.
    pub fn points(&self) -> &'env Matrix {
        self.points
    }

    /// The distance kind used by every pass.
    pub fn metric(&self) -> DistanceKind {
        self.metric
    }

    /// Worker threads backing this pool (0 in serial mode). A
    /// measurement, not a search fact: manifest gauges only, never the
    /// event stream.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Cumulative **logical** work counters since pool creation: the
    /// canonical semantic passes, identical for every thread count and
    /// for the cached and uncached engines.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Cumulative **physical** work counters since pool creation: the
    /// fan-outs that actually ran. With the round cache active this is
    /// at most [`Pool::stats`]; manifest counters only, never the
    /// event stream.
    pub fn physical_stats(&self) -> PoolStats {
        self.physical
    }

    /// Book one logical pass (a full sweep over every row block)
    /// without running anything. The round cache calls this for every
    /// semantic pass it serves — fully or partially — from cache, so
    /// the logical counters embedded in `round` events stay identical
    /// to the uncached engine's.
    pub(crate) fn note_logical_pass(&mut self) {
        self.stats.dispatches += 1;
        self.stats.blocks += self.points.rows().div_ceil(kernel::BLOCK) as u64;
    }

    /// Work counters accumulated since the previous call (or pool
    /// creation). The iterative phase calls this once per round to tag
    /// its `round` events with per-round pool work.
    pub fn take_round_delta(&mut self) -> PoolStats {
        let delta = self.stats.diff(self.round_mark);
        self.round_mark = self.stats;
        delta
    }

    /// Largest number of jobs queued by a single dispatch (0 in serial
    /// mode). Scheduling-dependent by nature: manifest gauges only.
    pub fn queue_high_water(&self) -> u64 {
        self.queue_high_water
    }

    /// Install (or remove) the neighbor index. With an index set, every
    /// fused, assignment, and refinement pass runs its pruned kernel
    /// twin; results are bit-identical either way.
    pub fn set_index(&mut self, index: Option<Arc<NeighborIndex>>) {
        self.index = index;
    }

    /// Whether a neighbor index is installed.
    pub fn index_enabled(&self) -> bool {
        self.index.is_some()
    }

    /// Cumulative index-pruning counters since pool creation.
    /// Scheduling-independent (per-pair decisions depend only on the
    /// pair) but engine-dependent: manifest counters only, never the
    /// event stream.
    pub fn prune_stats(&self) -> PruneStats {
        self.prune
    }

    /// Whether the columnar layout is installed (every pass then runs
    /// the columnar kernel twins).
    pub fn layout_enabled(&self) -> bool {
        self.layout.is_some()
    }

    /// Whether assignment passes engage the `f32` exactness-gated
    /// screen.
    pub fn fast_math_enabled(&self) -> bool {
        self.fast_math
    }

    /// Cumulative fast-path counters since pool creation
    /// (manifest-only, like [`Pool::prune_stats`]).
    pub fn fast_math_stats(&self) -> FastMathStats {
        self.fstats
    }

    /// Row blocks dispatched `(with, without)` the columnar layout
    /// since pool creation (manifest-only `layout.*` counters).
    pub fn layout_block_counts(&self) -> (u64, u64) {
        (self.columnar_blocks, self.rowmajor_blocks)
    }

    /// Fan a task out over all row blocks, booking both a logical and a
    /// physical pass (the default for the uncached full passes).
    fn dispatch(&mut self, task: Task) -> Vec<Partial> {
        self.note_logical_pass();
        self.dispatch_physical(task)
    }

    /// Fan a task out over all row blocks and collect the partials in
    /// ascending block order. Books only a *physical* pass — used
    /// directly by the cache's subset recomputations, whose logical
    /// accounting happens at the semantic-pass level instead.
    fn dispatch_physical(&mut self, task: Task) -> Vec<Partial> {
        let blocks = kernel::blocks(self.points.rows());
        self.physical.dispatches += 1;
        self.physical.blocks += blocks.len() as u64;
        if self.layout.is_some() {
            self.columnar_blocks += blocks.len() as u64;
        } else {
            self.rowmajor_blocks += blocks.len() as u64;
        }
        match &self.mode {
            Mode::Serial => blocks
                .into_iter()
                .map(|(lo, hi)| {
                    let (partial, prune, fstats) = task.run(
                        self.points,
                        self.metric,
                        self.layout.as_deref(),
                        self.fast_math,
                        lo,
                        hi,
                    );
                    self.prune.merge(prune);
                    self.fstats.merge(fstats);
                    partial
                })
                .collect(),
            Mode::Pooled { job_tx, result_rx } => {
                let total = blocks.len();
                let mut slots: Vec<Option<Partial>> = (0..total).map(|_| None).collect();
                let mut queued = 0usize;
                for (index, &block) in blocks.iter().enumerate() {
                    let job = Job {
                        task: task.clone_refs(),
                        block,
                        index,
                    };
                    if job_tx.send(job).is_err() {
                        break; // workers gone: the serial sweep below covers it
                    }
                    queued += 1;
                }
                self.queue_high_water = self.queue_high_water.max(queued as u64);
                let mut received = 0usize;
                let mut prune = PruneStats::default();
                let mut fstats = FastMathStats::default();
                while received < queued {
                    match result_rx.recv() {
                        Ok((index, partial, block_prune, block_fstats)) => {
                            if slots[index].replace(partial).is_none() {
                                received += 1;
                                prune.merge(block_prune);
                                fstats.merge(block_fstats);
                            }
                        }
                        Err(_) => break, // all workers gone mid-dispatch
                    }
                }
                // Graceful degradation: any block no worker reported
                // (a hung-up pool) is computed on this thread, so the
                // pass always completes with the exact serial result.
                for (slot, &(lo, hi)) in slots.iter_mut().zip(&blocks) {
                    if slot.is_none() {
                        let (partial, block_prune, block_fstats) = task.run(
                            self.points,
                            self.metric,
                            self.layout.as_deref(),
                            self.fast_math,
                            lo,
                            hi,
                        );
                        *slot = Some(partial);
                        prune.merge(block_prune);
                        fstats.merge(block_fstats);
                    }
                }
                self.prune.merge(prune);
                self.fstats.merge(fstats);
                slots.into_iter().flatten().collect()
            }
        }
    }

    /// The fused locality + `X` pass: localities of every medoid and
    /// the per-dimension average distances over them, from one sweep.
    pub fn fused_round(
        &mut self,
        medoids: &[usize],
        deltas: &[f64],
    ) -> (Vec<Vec<usize>>, Vec<Vec<f64>>) {
        self.note_logical_pass();
        self.fused_pass(medoids, deltas)
    }

    /// [`Pool::fused_round`] booking only physical work. The cache uses
    /// this to recompute the invalidated *subset* of medoid slots: each
    /// slot's locality and `X` row depend only on its own `(mᵢ, δᵢ)`
    /// pair and the fixed block tiling, so a subset pass is bit-identical
    /// to the matching slots of the full pass.
    pub(crate) fn fused_pass(
        &mut self,
        medoids: &[usize],
        deltas: &[f64],
    ) -> (Vec<Vec<usize>>, Vec<Vec<f64>>) {
        let d = self.points.cols();
        // O(k²·d + k·R) per pass — amortized over the O(N·k·d) sweep it
        // prunes. Built fresh each pass because the medoid set changes.
        let ctx = self.index.as_ref().map(|idx| {
            Arc::new(FusedPruneCtx::new(
                Arc::clone(idx),
                self.points,
                medoids,
                self.metric,
            ))
        });
        let partials = self.dispatch_physical(Task::Fused {
            medoids: Arc::new(medoids.to_vec()),
            deltas: Arc::new(deltas.to_vec()),
            ctx,
        });
        let fused = partials
            .into_iter()
            .map(|p| match p {
                Partial::Fused(f) => f,
                _ => unreachable!("fused task returns fused partials"),
            })
            .collect();
        kernel::merge_fused(fused, medoids, d)
    }

    /// Segmental-distance columns for the given medoid slots: one
    /// `Vec<f64>` of length `N` per slot, `cols[s][p]` the distance of
    /// point `p` to `medoids[s]` under `dims[s]`. Physical work only —
    /// this is the cache's column-recomputation pass; see
    /// [`crate::kernel::columns_block`] for the bit-identity argument.
    pub(crate) fn distance_columns(
        &mut self,
        medoids: &[usize],
        dims: &[Vec<usize>],
    ) -> Vec<Vec<f64>> {
        if medoids.is_empty() {
            return Vec::new();
        }
        let partials = self.dispatch_physical(Task::Columns {
            medoids: Arc::new(medoids.to_vec()),
            dims: Arc::new(dims.to_vec()),
        });
        let mut cols: Vec<Vec<f64>> = medoids
            .iter()
            .map(|_| Vec::with_capacity(self.points.rows()))
            .collect();
        for p in partials {
            match p {
                Partial::Columns(c) => {
                    for (full, mut part) in cols.iter_mut().zip(c) {
                        full.append(&mut part);
                    }
                }
                _ => unreachable!("columns task returns column partials"),
            }
        }
        cols
    }

    /// Plain assignment pass (no `X` accumulation).
    pub fn assign(&mut self, medoids: &[usize], dims: &[Vec<usize>]) -> Vec<usize> {
        let pruned = self.index.is_some();
        let partials = self.dispatch(Task::Assign {
            medoids: Arc::new(medoids.to_vec()),
            dims: Arc::new(dims.to_vec()),
            pruned,
        });
        let mut flat = Vec::with_capacity(self.points.rows());
        for p in partials {
            match p {
                Partial::Assign(mut a) => flat.append(&mut a),
                _ => unreachable!("assign task returns assign partials"),
            }
        }
        flat
    }

    /// Assignment fused with the cluster-based `X` averages of the
    /// resulting clusters (consumed by the next inner refinement).
    pub fn assign_x(
        &mut self,
        medoids: &[usize],
        dims: &[Vec<usize>],
    ) -> (Vec<usize>, Vec<Vec<f64>>) {
        let k = medoids.len();
        let d = self.points.cols();
        let pruned = self.index.is_some();
        let partials = self.dispatch(Task::AssignX {
            medoids: Arc::new(medoids.to_vec()),
            dims: Arc::new(dims.to_vec()),
            pruned,
        });
        let parts = partials
            .into_iter()
            .map(|p| match p {
                Partial::AssignX(a) => a,
                _ => unreachable!("assign_x task returns assign_x partials"),
            })
            .collect();
        kernel::merge_assign_x(parts, k, d)
    }

    /// Cluster-based `X` averages for a fixed assignment (outliers —
    /// `None` — contribute nothing). Used by the refinement phase.
    pub fn cluster_x(
        &mut self,
        medoids: &[usize],
        assignment: Arc<Vec<Option<usize>>>,
    ) -> Vec<Vec<f64>> {
        self.note_logical_pass();
        self.cluster_x_pass(medoids, assignment)
    }

    /// [`Pool::cluster_x`] booking only physical work. The cache uses
    /// this with a *masked* assignment (`Some` only for the clusters
    /// whose membership or medoid changed) to recompute just the
    /// invalidated cluster-`X` rows: each cluster's row accumulates its
    /// own members in the same block-grouped ascending order either
    /// way, so the subset rows are bit-identical to the full pass.
    pub(crate) fn cluster_x_pass(
        &mut self,
        medoids: &[usize],
        assignment: Arc<Vec<Option<usize>>>,
    ) -> Vec<Vec<f64>> {
        let k = medoids.len();
        let d = self.points.cols();
        let mut counts = vec![0usize; k];
        for a in assignment.iter().flatten() {
            counts[*a] += 1;
        }
        let partials = self.dispatch_physical(Task::ClusterX {
            medoids: Arc::new(medoids.to_vec()),
            assignment,
        });
        let parts = partials
            .into_iter()
            .map(|p| match p {
                Partial::ClusterX(x) => x,
                _ => unreachable!("cluster_x task returns cluster_x partials"),
            })
            .collect();
        kernel::merge_cluster_x(parts, &counts, d)
    }

    /// Refinement assignment: nearest medoid, `None` outside every
    /// sphere of influence.
    pub fn refine_assign(
        &mut self,
        medoids: &[usize],
        dims: &[Vec<usize>],
        spheres: &[f64],
    ) -> Vec<Option<usize>> {
        let pruned = self.index.is_some();
        let partials = self.dispatch(Task::RefineAssign {
            medoids: Arc::new(medoids.to_vec()),
            dims: Arc::new(dims.to_vec()),
            spheres: Arc::new(spheres.to_vec()),
            pruned,
        });
        let mut flat = Vec::with_capacity(self.points.rows());
        for p in partials {
            match p {
                Partial::RefineAssign(mut a) => flat.append(&mut a),
                _ => unreachable!("refine task returns refine partials"),
            }
        }
        flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locality::medoid_deltas;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * d).map(|_| rng.random_range(0.0..100.0)).collect();
        Matrix::from_vec(data, n, d)
    }

    /// Every pooled pass must be bit-identical to the serial pool for
    /// any worker count, including counts far above the block count.
    #[test]
    fn pooled_passes_match_serial_bit_for_bit() {
        let points = random_points(3000, 6, 42);
        let medoids = vec![5usize, 700, 1800];
        let dims = vec![vec![0, 1], vec![2, 3], vec![4, 5]];
        let metric = DistanceKind::Manhattan;
        let deltas = medoid_deltas(&points, &medoids, metric);
        let spheres = crate::refine::spheres_of_influence(&points, &medoids, &dims, metric);

        let serial = with_pool(&points, metric, 1, |pool| {
            let fused = pool.fused_round(&medoids, &deltas);
            let assign = pool.assign(&medoids, &dims);
            let ax = pool.assign_x(&medoids, &dims);
            let asg: Arc<Vec<Option<usize>>> = Arc::new(assign.iter().map(|&a| Some(a)).collect());
            let cx = pool.cluster_x(&medoids, asg);
            let ra = pool.refine_assign(&medoids, &dims, &spheres);
            (fused, assign, ax, cx, ra)
        });

        for threads in [2, 3, 8, 64] {
            let pooled = with_pool(&points, metric, threads, |pool| {
                let fused = pool.fused_round(&medoids, &deltas);
                let assign = pool.assign(&medoids, &dims);
                let ax = pool.assign_x(&medoids, &dims);
                let asg: Arc<Vec<Option<usize>>> =
                    Arc::new(assign.iter().map(|&a| Some(a)).collect());
                let cx = pool.cluster_x(&medoids, asg);
                let ra = pool.refine_assign(&medoids, &dims, &spheres);
                (fused, assign, ax, cx, ra)
            });
            assert_eq!(serial.0, pooled.0, "fused, threads = {threads}");
            assert_eq!(serial.1, pooled.1, "assign, threads = {threads}");
            assert_eq!(serial.2, pooled.2, "assign_x, threads = {threads}");
            assert_eq!(serial.3, pooled.3, "cluster_x, threads = {threads}");
            assert_eq!(serial.4, pooled.4, "refine, threads = {threads}");
        }
    }

    /// A subset fused pass (the cache's invalidation recompute) must be
    /// bit-identical to the matching slots of the full pass, and the
    /// column pass must reproduce the exact distances the assignment
    /// kernels compare.
    #[test]
    fn subset_passes_match_full_pass_slots() {
        let points = random_points(2600, 6, 17);
        let medoids = vec![5usize, 700, 1800, 2100];
        let dims = vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![0, 5]];
        let metric = DistanceKind::Manhattan;
        let deltas = medoid_deltas(&points, &medoids, metric);

        for threads in [1, 4] {
            with_pool(&points, metric, threads, |pool| {
                let (full_locs, full_x) = pool.fused_round(&medoids, &deltas);
                for subset in [vec![1usize], vec![0, 2], vec![3, 1]] {
                    let sub_m: Vec<usize> = subset.iter().map(|&i| medoids[i]).collect();
                    let sub_d: Vec<f64> = subset.iter().map(|&i| deltas[i]).collect();
                    let (locs, x) = pool.fused_pass(&sub_m, &sub_d);
                    for (j, &slot) in subset.iter().enumerate() {
                        assert_eq!(locs[j], full_locs[slot], "threads {threads} slot {slot}");
                        assert_eq!(x[j], full_x[slot], "threads {threads} slot {slot}");
                    }
                }

                let cols = pool.distance_columns(&medoids, &dims);
                for (s, (&m, di)) in medoids.iter().zip(&dims).enumerate() {
                    for (p, &got) in cols[s].iter().enumerate() {
                        let direct = metric.eval_segmental(points.row(p), points.row(m), di);
                        assert_eq!(got.to_bits(), direct.to_bits(), "slot {s} row {p}");
                    }
                }
                assert!(pool.distance_columns(&[], &[]).is_empty());
            });
        }
    }

    /// Logical stats count semantic passes over every block; physical
    /// stats count what actually ran. A subset pass moves only the
    /// physical needle.
    #[test]
    fn logical_and_physical_stats_diverge_on_subset_passes() {
        let points = random_points(3000, 4, 3);
        let medoids = vec![1usize, 2000];
        let metric = DistanceKind::Manhattan;
        let deltas = medoid_deltas(&points, &medoids, metric);
        with_pool(&points, metric, 1, |pool| {
            let nblocks = kernel::blocks(points.rows()).len() as u64;
            pool.fused_round(&medoids, &deltas);
            assert_eq!(pool.stats(), pool.physical_stats());
            assert_eq!(pool.stats().dispatches, 1);
            assert_eq!(pool.stats().blocks, nblocks);

            pool.fused_pass(&medoids[..1], &deltas[..1]);
            assert_eq!(pool.stats().dispatches, 1, "subset pass is not logical");
            assert_eq!(pool.physical_stats().dispatches, 2);

            pool.note_logical_pass();
            assert_eq!(pool.stats().dispatches, 2);
            assert_eq!(pool.stats().blocks, 2 * nblocks);
            assert_eq!(pool.physical_stats().dispatches, 2);
        });
    }

    #[test]
    fn pool_survives_many_rounds() {
        // The same workers serve repeated dispatches (the whole point of
        // the persistent pool).
        let points = random_points(2500, 4, 7);
        let metric = DistanceKind::Manhattan;
        let total = with_pool(&points, metric, 4, |pool| {
            let mut sum = 0usize;
            for round in 0..20 {
                let medoids = vec![round, 1000 + round];
                let dims = vec![vec![0, 1], vec![2, 3]];
                sum += pool.assign(&medoids, &dims).iter().sum::<usize>();
            }
            sum
        });
        let serial_total = with_pool(&points, metric, 1, |pool| {
            let mut sum = 0usize;
            for round in 0..20 {
                let medoids = vec![round, 1000 + round];
                let dims = vec![vec![0, 1], vec![2, 3]];
                sum += pool.assign(&medoids, &dims).iter().sum::<usize>();
            }
            sum
        });
        assert_eq!(total, serial_total);
    }

    /// Installing the neighbor index must not move a single bit of any
    /// pass result — only the prune counters — at any thread count.
    #[test]
    fn indexed_pool_passes_match_unindexed_bit_for_bit() {
        let points = random_points(3000, 6, 42);
        let medoids = vec![5usize, 700, 1800];
        let dims = vec![vec![0, 1], vec![2, 3], vec![4, 5]];
        let metric = DistanceKind::Manhattan;
        let deltas = medoid_deltas(&points, &medoids, metric);
        let spheres = crate::refine::spheres_of_influence(&points, &medoids, &dims, metric);

        let run = |threads: usize, indexed: bool| {
            with_pool(&points, metric, threads, |pool| {
                if indexed {
                    pool.set_index(Some(Arc::new(NeighborIndex::build(&points, metric))));
                    assert!(pool.index_enabled());
                }
                let fused = pool.fused_round(&medoids, &deltas);
                let assign = pool.assign(&medoids, &dims);
                let ax = pool.assign_x(&medoids, &dims);
                let ra = pool.refine_assign(&medoids, &dims, &spheres);
                let pruned = {
                    let s = pool.prune_stats();
                    s.range_sketch_pruned
                        + s.range_triangle_pruned
                        + s.range_prefix_pruned
                        + s.nearest_pruned
                };
                (fused, assign, ax, ra, pruned)
            })
        };

        let plain = run(1, false);
        assert_eq!(plain.4, 0, "unindexed pool must not count prunes");
        for threads in [1, 4] {
            let indexed = run(threads, true);
            assert_eq!(plain.0, indexed.0, "fused, threads {threads}");
            assert_eq!(plain.1, indexed.1, "assign, threads {threads}");
            assert_eq!(plain.2, indexed.2, "assign_x, threads {threads}");
            assert_eq!(plain.3, indexed.3, "refine, threads {threads}");
            assert!(indexed.4 > 0, "index inert at threads {threads}");
        }
        // The counters themselves are scheduling-independent.
        assert_eq!(run(1, true).4, run(4, true).4);
    }

    #[test]
    fn tiny_datasets_stay_serial() {
        // Fewer rows than one block: no workers are spawned, results
        // still correct.
        let points = random_points(50, 3, 1);
        let medoids = vec![0usize, 25];
        let dims = vec![vec![0, 1], vec![1, 2]];
        let metric = DistanceKind::Manhattan;
        let a = with_pool(&points, metric, 8, |pool| pool.assign(&medoids, &dims));
        let b = crate::assign::assign_points(&points, &medoids, &dims, metric);
        assert_eq!(a, b);
    }
}
