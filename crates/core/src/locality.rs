//! Locality analysis (paper §2.2, "Finding Dimensions" preamble).
//!
//! For each medoid `mᵢ`, `δᵢ` is the distance to the nearest other
//! medoid and the locality `Lᵢ` is the set of points within `δᵢ` of
//! `mᵢ`. Localities may overlap and need not cover the dataset; Theorem
//! 3.1 argues each contains ≈ `N/k` points in expectation, enough to
//! estimate per-dimension spread robustly.
//!
//! Distances here are full-dimensional. We use the *segmental* form over
//! all `d` dimensions (i.e. the metric divided by `d`): since both `δᵢ`
//! and the point distances scale by the same constant, the resulting
//! localities are identical to the unnormalized convention, and the
//! values are directly comparable to segmental distances elsewhere.
//!
//! # Degenerate medoids
//!
//! Coincident medoids are *not* a problem: `δᵢ = 0` keeps the locality
//! non-empty because membership is tested with `≤` and the medoid (and
//! every coordinate-identical point) sits at distance exactly zero. The
//! only way a locality can come out empty is a medoid with non-finite
//! coordinates (reachable through
//! [`crate::params::Proclus::fit_with_initial_medoids`], which does not
//! require finite rows): its distance to every point — itself included —
//! is NaN, which fails the `≤ δᵢ` test. An empty `Lᵢ` would make
//! FindDimensions degenerate (no reference set at all), so both this
//! module and the fused kernel path ([`crate::kernel::merge_fused`])
//! fall back to the singleton `Lᵢ = {mᵢ}` with a zero `X` row — the
//! values a finite medoid would contribute, since `|m_j − m_j| = 0`.

use crate::index::{FusedPruneCtx, NeighborIndex, PruneStats};
use proclus_math::{DistanceKind, Matrix};
use std::sync::Arc;

/// `δᵢ` for each medoid: distance to the nearest *other* medoid.
///
/// With a single medoid there is no other medoid; δ is infinite and the
/// locality becomes the whole dataset (a sensible k = 1 degeneration).
pub fn medoid_deltas(points: &Matrix, medoids: &[usize], metric: DistanceKind) -> Vec<f64> {
    let d = points.cols();
    let all_dims: Vec<usize> = (0..d).collect();
    let k = medoids.len();
    let mut deltas = vec![f64::INFINITY; k];
    for i in 0..k {
        for j in (i + 1)..k {
            let dist =
                metric.eval_segmental(points.row(medoids[i]), points.row(medoids[j]), &all_dims);
            if dist < deltas[i] {
                deltas[i] = dist;
            }
            if dist < deltas[j] {
                deltas[j] = dist;
            }
        }
    }
    deltas
}

/// The localities `L₁ … L_k`: for each medoid, the indices of all points
/// whose full-space distance to it is at most `δᵢ`.
///
/// Each locality always contains at least the medoid itself: a finite
/// medoid is at distance zero from itself, and a non-finite medoid
/// (whose NaN distances would otherwise empty the locality) falls back
/// to the singleton `{mᵢ}` — see the module docs.
pub fn localities(
    points: &Matrix,
    medoids: &[usize],
    deltas: &[f64],
    metric: DistanceKind,
) -> Vec<Vec<usize>> {
    let d = points.cols();
    let all_dims: Vec<usize> = (0..d).collect();
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); medoids.len()];
    locality_range(
        points,
        medoids,
        deltas,
        metric,
        &all_dims,
        0,
        points.rows(),
        &mut out,
    );
    for (li, &m) in out.iter_mut().zip(medoids) {
        if li.is_empty() {
            li.push(m);
        }
    }
    out
}

/// The plain locality scan over rows `lo..hi`, pushing members into
/// existing lists — the tail loop the indexed scan falls back to when
/// its adaptive gates turn the pruning machinery off.
#[allow(clippy::too_many_arguments)]
fn locality_range(
    points: &Matrix,
    medoids: &[usize],
    deltas: &[f64],
    metric: DistanceKind,
    all_dims: &[usize],
    lo: usize,
    hi: usize,
    out: &mut [Vec<usize>],
) {
    for p in lo..hi {
        let row = points.row(p);
        for (i, &m) in medoids.iter().enumerate() {
            let dist = metric.eval_segmental(row, points.row(m), all_dims);
            if dist <= deltas[i] {
                out[i].push(p);
            }
        }
    }
}

/// [`localities`] answered through the neighbor index: candidates whose
/// sketch or triangle lower bound proves them outside `δᵢ` skip the
/// exact distance, and the surviving evaluations abandon mid-sum once
/// their prefix accumulator certifies `dist > δᵢ`; every actual member
/// is verified exactly, in the same order — the result (including the
/// empty-locality fallback) is **bit-identical** to the plain scan.
/// `stats` accumulates the pruned/verified counts.
pub fn localities_indexed(
    points: &Matrix,
    medoids: &[usize],
    deltas: &[f64],
    metric: DistanceKind,
    index: &Arc<NeighborIndex>,
    stats: &mut PruneStats,
) -> Vec<Vec<usize>> {
    let d = points.cols();
    let all_dims: Vec<usize> = (0..d).collect();
    let ctx = FusedPruneCtx::new(Arc::clone(index), points, medoids, metric);
    let k = medoids.len();
    let rt_member: Vec<f64> = deltas
        .iter()
        .map(|&delta| crate::index::raw_gt_threshold(metric, delta, d))
        .collect();
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut evaluated = vec![f64::NAN; k];
    // Adaptive gates: probe the first PROBE_POINTS rows with the full
    // machinery, then disable (a) the whole-pair bounds when too few
    // probed pairs pruned, and (b) the prefix device when too few
    // reached evaluations abandoned (see `crate::index`).
    let probe_end = crate::index::PROBE_POINTS.min(points.rows());
    let base_bounds = stats.range_sketch_pruned + stats.range_triangle_pruned;
    let base_prefix = stats.range_prefix_pruned;
    let base_verified = stats.range_verified;
    let mut probing = true;
    let mut bounds_on = true;
    let mut prefix_on = true;
    for p in 0..points.rows() {
        if probing && p == probe_end {
            probing = false;
            let pruned = stats.range_sketch_pruned + stats.range_triangle_pruned - base_bounds;
            let probed = (probe_end * k) as u64;
            bounds_on = pruned >= probed >> crate::index::PROBE_DISABLE_SHIFT;
            let abandoned = stats.range_prefix_pruned - base_prefix;
            let reached = abandoned + (stats.range_verified - base_verified);
            prefix_on = abandoned * crate::index::PREFIX_KEEP_DEN
                >= reached * crate::index::PREFIX_KEEP_NUM;
            if !bounds_on && !prefix_on {
                // Nothing left of the pruning machinery: hand the rest
                // of the scan to the plain loop (same membership order).
                stats.range_verified += ((points.rows() - p) * k) as u64;
                locality_range(
                    points,
                    medoids,
                    deltas,
                    metric,
                    &all_dims,
                    p,
                    points.rows(),
                    &mut out,
                );
                break;
            }
        }
        let row = points.row(p);
        for e in evaluated.iter_mut() {
            *e = f64::NAN;
        }
        for (i, &m) in medoids.iter().enumerate() {
            if bounds_on && ctx.prunes(p, i, deltas[i], &evaluated[..i], stats) {
                continue;
            }
            let verdict = if prefix_on {
                crate::index::segmental_bounded(metric, row, points.row(m), &all_dims, rt_member[i])
            } else {
                Some(metric.eval_segmental(row, points.row(m), &all_dims))
            };
            let Some(dist) = verdict else {
                stats.range_prefix_pruned += 1;
                continue;
            };
            evaluated[i] = dist;
            stats.range_verified += 1;
            if dist <= deltas[i] {
                out[i].push(p);
            }
        }
    }
    for (li, &m) in out.iter_mut().zip(medoids) {
        if li.is_empty() {
            li.push(m);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_points() -> Matrix {
        // Points at x = 0..=10.
        let rows: Vec<[f64; 1]> = (0..=10).map(|i| [i as f64]).collect();
        Matrix::from_rows(&rows, 1)
    }

    #[test]
    fn deltas_are_nearest_other_medoid() {
        let m = line_points();
        // Medoids at 0, 4, 10 -> deltas 4, 4, 6.
        let deltas = medoid_deltas(&m, &[0, 4, 10], DistanceKind::Manhattan);
        assert_eq!(deltas, vec![4.0, 4.0, 6.0]);
    }

    #[test]
    fn single_medoid_delta_is_infinite() {
        let m = line_points();
        let deltas = medoid_deltas(&m, &[5], DistanceKind::Manhattan);
        assert_eq!(deltas, vec![f64::INFINITY]);
        let locs = localities(&m, &[5], &deltas, DistanceKind::Manhattan);
        assert_eq!(locs[0].len(), 11, "locality covers everything");
    }

    #[test]
    fn localities_are_balls_of_radius_delta() {
        let m = line_points();
        let medoids = [0usize, 4, 10];
        let deltas = medoid_deltas(&m, &medoids, DistanceKind::Manhattan);
        let locs = localities(&m, &medoids, &deltas, DistanceKind::Manhattan);
        // L0: |x - 0| <= 4 -> {0..4}
        assert_eq!(locs[0], vec![0, 1, 2, 3, 4]);
        // L1: |x - 4| <= 4 -> {0..8}
        assert_eq!(locs[1], vec![0, 1, 2, 3, 4, 5, 6, 7, 8]);
        // L2: |x - 10| <= 6 -> {4..10}
        assert_eq!(locs[2], vec![4, 5, 6, 7, 8, 9, 10]);
        // Every locality contains its own medoid.
        for (i, &mi) in medoids.iter().enumerate() {
            assert!(locs[i].contains(&mi));
        }
    }

    #[test]
    fn localities_may_overlap_and_not_cover() {
        // Medoids at 0 and 2; point at 10 belongs to neither locality.
        let m = line_points();
        let medoids = [0usize, 2];
        let deltas = medoid_deltas(&m, &medoids, DistanceKind::Manhattan);
        let locs = localities(&m, &medoids, &deltas, DistanceKind::Manhattan);
        let all: Vec<usize> = locs.concat();
        assert!(!all.contains(&10), "far point not in any locality");
        assert!(locs[0].contains(&2) && locs[1].contains(&0), "overlap ok");
    }

    /// Duplicate points chosen as distinct medoids make `δᵢ = 0`: each
    /// locality degenerates to exactly the set of coordinate-identical
    /// points (distance `0 ≤ δᵢ`), never goes empty, and the fused
    /// pooled kernel agrees with the legacy path (its `X` averages are
    /// all-zero, since every contributing difference is zero).
    #[test]
    fn duplicate_medoids_yield_zero_delta_localities() {
        // Rows 0, 1, and 4 are coordinate-identical; 0 and 1 are both
        // medoids.
        let rows: Vec<[f64; 1]> = vec![[5.0], [5.0], [0.0], [10.0], [5.0]];
        let m = Matrix::from_rows(&rows, 1);
        let medoids = [0usize, 1];
        let metric = DistanceKind::Manhattan;

        let deltas = medoid_deltas(&m, &medoids, metric);
        assert_eq!(deltas, vec![0.0, 0.0]);

        let locs = localities(&m, &medoids, &deltas, metric);
        for (i, loc) in locs.iter().enumerate() {
            assert_eq!(*loc, vec![0, 1, 4], "locality {i}");
            assert!(loc.contains(&medoids[i]), "medoid {i} in its locality");
        }

        let (fused_locs, x) =
            crate::pool::with_pool(&m, metric, 1, |pool| pool.fused_round(&medoids, &deltas));
        assert_eq!(fused_locs, locs);
        for xi in &x {
            assert!(xi.iter().all(|&v| v == 0.0), "X over duplicates is zero");
        }
    }

    /// Regression (empty-locality fallback): a forced medoid with a NaN
    /// coordinate is at NaN distance from everything including itself,
    /// which used to produce an empty locality. Both the legacy and the
    /// fused/pooled paths must now fall back to `Lᵢ = {mᵢ}` and agree
    /// with each other.
    #[test]
    fn non_finite_medoid_locality_falls_back_to_singleton() {
        let rows: Vec<[f64; 2]> = vec![
            [0.0, 0.0],
            [f64::NAN, 1.0],
            [1.0, 0.5],
            [10.0, 10.0],
            [10.5, 10.2],
        ];
        let m = Matrix::from_rows(&rows, 2);
        let medoids = [1usize, 3];
        let metric = DistanceKind::Manhattan;
        let deltas = medoid_deltas(&m, &medoids, metric);

        let legacy = localities(&m, &medoids, &deltas, metric);
        assert_eq!(legacy[0], vec![1], "NaN medoid degenerates to {{mᵢ}}");
        assert!(legacy[1].contains(&3));

        let (fused, x) =
            crate::pool::with_pool(&m, metric, 1, |pool| pool.fused_round(&medoids, &deltas));
        assert_eq!(fused, legacy, "fused path applies the same fallback");
        assert_eq!(x[0], vec![0.0, 0.0], "fallback X row is zero, not NaN");
    }

    /// Regression (empty-locality fallback, end-to-end): a fit forced to
    /// start from a NaN-coordinate medoid completes without panicking
    /// and still reports non-empty localities for every round.
    #[test]
    fn fit_from_non_finite_medoid_survives() {
        use proclus_obs::{Event, RingRecorder};
        let mut rows: Vec<[f64; 2]> = (0..30)
            .map(|i| [(i % 5) as f64, (i / 5) as f64 * 10.0])
            .collect();
        rows[7] = [f64::NAN, 2.0];
        let m = Matrix::from_rows(&rows, 2);
        let rec = RingRecorder::new(4096);
        let model = crate::Proclus::new(2, 2.0)
            .seed(3)
            .restarts(1)
            .fit_with_initial_medoids_traced(&m, &[7, 20], &rec)
            .expect("fallback keeps the fit alive");
        assert_eq!(model.assignment().len(), 30);
        let mut rounds = 0;
        for ev in rec.events() {
            if let Event::Round { locality_sizes, .. } = ev {
                rounds += 1;
                assert!(
                    locality_sizes.iter().all(|&s| s >= 1),
                    "every locality non-empty after the fallback: {locality_sizes:?}"
                );
            }
        }
        assert!(rounds > 0);
    }

    #[test]
    fn segmental_normalization_does_not_change_localities() {
        // 2-d version: distances are divided by d = 2 on both sides of
        // the comparison, so membership is invariant.
        let rows: Vec<[f64; 2]> = (0..=10).map(|i| [i as f64, i as f64]).collect();
        let m = Matrix::from_rows(&rows, 2);
        let medoids = [0usize, 6];
        let deltas = medoid_deltas(&m, &medoids, DistanceKind::Manhattan);
        let locs = localities(&m, &medoids, &deltas, DistanceKind::Manhattan);
        // delta_0 = segmental distance between rows 0 and 6 = (6+6)/2 = 6
        assert_eq!(deltas[0], 6.0);
        // L0: segmental distance (x+x)/2 = x <= 6 -> {0..6}
        assert_eq!(locs[0], vec![0, 1, 2, 3, 4, 5, 6]);
    }
}
