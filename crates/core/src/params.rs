//! The [`Proclus`] parameter builder and `fit` entry point.

use crate::error::ProclusError;
use crate::model::ProclusModel;
use proclus_math::{DistanceKind, Matrix};

/// How the candidate medoid set is constructed (ablation knob; the
/// paper's algorithm is [`InitStrategy::SampleGreedy`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InitStrategy {
    /// Random sample of `A·k` points reduced to `B·k` by the greedy
    /// farthest-point pass (the paper's two-step initialization).
    #[default]
    SampleGreedy,
    /// Plain random sample of `B·k` points — skips the greedy pass.
    /// Used by the initialization ablation benchmark to show why the
    /// greedy step exists.
    RandomOnly,
}

/// Configuration for a PROCLUS run. Construct with [`Proclus::new`],
/// adjust with the builder methods, then call [`Proclus::fit`].
///
/// The two *semantic* inputs are the paper's: the number of clusters `k`
/// and the average cluster dimensionality `l` (so `k·l` dimensions are
/// distributed over the clusters, at least 2 each). Everything else is a
/// tuning knob with a paper-faithful default.
#[derive(Clone, Debug)]
pub struct Proclus {
    /// Number of clusters `k`.
    pub k: usize,
    /// Average number of dimensions per cluster `l`. May be fractional
    /// as long as `k·l` rounds to an integer total (the paper requires
    /// `k·l` integral).
    pub l: f64,
    /// Initialization sample size factor: the random sample has
    /// `A·k` points. The paper calls this constant `A`; default 30.
    pub sample_factor: usize,
    /// Greedy reduction factor: the candidate medoid set `M` keeps
    /// `B·k` points. The paper calls this constant `B`; default 3.
    pub medoid_factor: usize,
    /// A cluster with fewer than `(N/k) · min_deviation` points marks
    /// its medoid as *bad* (paper default 0.1).
    pub min_deviation: f64,
    /// Hill climbing stops after this many consecutive rounds without
    /// improvement of the best objective.
    pub max_stale_rounds: usize,
    /// Absolute cap on hill-climbing rounds (safety valve).
    pub max_rounds: usize,
    /// Independent hill-climbing restarts; the run with the lowest
    /// iterative objective wins (default 5). The paper's bad-medoid
    /// replacement can pin itself to a good medoid when the smallest
    /// cluster is a genuine one (kicking it never helps, and the
    /// duplicated medoid is never touched); cheap restarts from fresh
    /// random vertices of the search graph sidestep those local optima,
    /// in the spirit of CLARANS's `numlocal`.
    pub restarts: usize,
    /// Metric used for full-dimensional and segmental distances.
    /// The paper uses Manhattan throughout; other kinds exist for
    /// ablation studies.
    pub distance: DistanceKind,
    /// PRNG seed. Fits are fully deterministic given the seed.
    pub rng_seed: u64,
    /// Candidate-medoid construction strategy (ablation knob).
    pub init: InitStrategy,
    /// Number of cluster-based dimension recomputations folded into
    /// every hill-climbing evaluation (default 1).
    ///
    /// The paper's iterative phase derives dimensions from medoid
    /// *localities* only. Localities of well-separated medoids span
    /// nearly half the dataset in high dimensions, which pollutes the
    /// per-dimension averages and makes the objective rank piercing
    /// medoid sets no better than non-piercing ones. Re-deriving the
    /// dimensions once from the *assigned clusters* (exactly the
    /// paper's refinement procedure) before evaluating restores the
    /// paper's reported accuracy. Set to 0 for the paper-literal
    /// behavior (the ablation harness measures the difference).
    pub inner_refinements: usize,
    /// Standardize per-dimension average distances into Z-scores before
    /// allocating dimensions (the paper's FindDimensions). Disabling
    /// allocates raw averages — an ablation that loses the per-medoid
    /// scale normalization.
    pub standardize_dimensions: bool,
    /// Worker threads for the O(N·k·d) passes of every round (default
    /// 1 = serial, the paper's runtime model). The workers are spawned
    /// once per [`Proclus::fit`] and reused across all rounds and
    /// restarts (see [`crate::pool`]); work is tiled into fixed row
    /// blocks whose partial results merge in a canonical order, so the
    /// fit is **bit-identical for every thread count**.
    pub threads: usize,
    /// Reuse unchanged per-medoid round state across hill-climbing
    /// rounds (default `true`). The paper's iterative phase swaps only
    /// the *bad* medoids between rounds, so most localities, dimension
    /// averages, distance columns, and cluster sums are unchanged; the
    /// [`crate::cache::RoundCache`] serves those from cache and
    /// recomputes only the slots a swap touched — **bit-identically**,
    /// so fits, event streams, and golden digests are unaffected.
    /// Disable to force full recomputation every round (the cache's own
    /// correctness baseline; also what `cache.*` counters compare
    /// against).
    pub round_cache: bool,
    /// Use the exact-pruning neighbor index (default `true`). A per-fit
    /// [`crate::index::NeighborIndex`] (random-projection sketches plus
    /// per-pass medoid triangle bounds) lets the locality, assignment,
    /// and refinement passes skip exact segmental-distance evaluations
    /// whose outcome a certified lower bound already decides. The index
    /// only *prunes* — every surviving candidate is verified by the
    /// exact evaluation — so fits, event streams, and golden digests
    /// are **bit-identical** with it on or off; `index.*` manifest
    /// counters report the work saved. Disable for the unpruned
    /// baseline (`fit --no-index` on the CLI).
    pub neighbor_index: bool,
    /// Opt into the exactness-gated `f32` fast path (default `false`).
    /// Assignment kernels prescreen candidates with `f32` distances
    /// widened to conservative intervals (tolerance model:
    /// [`crate::layout::FAST_MATH_TOLERANCE_SCALE`]); only provably
    /// non-winning candidates are skipped and every accepted decision
    /// is re-verified in `f64`, so fits, event streams, and golden
    /// digests stay **bit-identical** with it on or off. `fastmath.*`
    /// manifest counters report the work saved (`fit --fast-math` on
    /// the CLI).
    pub fast_math: bool,
}

impl Proclus {
    /// A configuration with the paper's defaults for clustering into
    /// `k` clusters averaging `l` dimensions each.
    pub fn new(k: usize, l: f64) -> Self {
        Self {
            k,
            l,
            sample_factor: 30,
            medoid_factor: 3,
            min_deviation: 0.1,
            max_stale_rounds: 20,
            max_rounds: 300,
            restarts: 5,
            distance: DistanceKind::Manhattan,
            rng_seed: 0,
            init: InitStrategy::SampleGreedy,
            inner_refinements: 1,
            standardize_dimensions: true,
            threads: 1,
            round_cache: true,
            neighbor_index: true,
            fast_math: false,
        }
    }

    /// Toggle the incremental cross-round cache (default on; results
    /// are bit-identical either way — see [`crate::cache`]).
    pub fn round_cache(mut self, v: bool) -> Self {
        self.round_cache = v;
        self
    }

    /// Toggle the exact-pruning neighbor index (default on; results are
    /// bit-identical either way — see [`crate::index`]).
    pub fn neighbor_index(mut self, v: bool) -> Self {
        self.neighbor_index = v;
        self
    }

    /// Opt into the exactness-gated `f32` screening fast path (default
    /// off; results are bit-identical either way — see
    /// [`crate::layout`]).
    pub fn fast_math(mut self, v: bool) -> Self {
        self.fast_math = v;
        self
    }

    /// Set the worker-thread count for the heavy passes (min 1).
    pub fn threads(mut self, v: usize) -> Self {
        self.threads = v.max(1);
        self
    }

    /// Set the number of cluster-based dimension recomputations per
    /// evaluation (0 = paper-literal locality-only dimensions).
    pub fn inner_refinements(mut self, v: usize) -> Self {
        self.inner_refinements = v;
        self
    }

    /// Set the candidate-medoid construction strategy (ablation knob).
    pub fn init_strategy(mut self, s: InitStrategy) -> Self {
        self.init = s;
        self
    }

    /// Toggle Z-score standardization in FindDimensions (ablation
    /// knob; the paper's algorithm standardizes).
    pub fn standardize_dimensions(mut self, v: bool) -> Self {
        self.standardize_dimensions = v;
        self
    }

    /// Set the PRNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// Set the sample size factor `A`.
    pub fn sample_factor(mut self, a: usize) -> Self {
        self.sample_factor = a;
        self
    }

    /// Set the candidate-medoid factor `B`.
    pub fn medoid_factor(mut self, b: usize) -> Self {
        self.medoid_factor = b;
        self
    }

    /// Set the bad-medoid deviation threshold (paper default `0.1`).
    pub fn min_deviation(mut self, v: f64) -> Self {
        self.min_deviation = v;
        self
    }

    /// Set how many stale hill-climbing rounds end the search.
    pub fn max_stale_rounds(mut self, v: usize) -> Self {
        self.max_stale_rounds = v;
        self
    }

    /// Set the absolute cap on hill-climbing rounds.
    pub fn max_rounds(mut self, v: usize) -> Self {
        self.max_rounds = v;
        self
    }

    /// Set the number of independent restarts (min 1).
    pub fn restarts(mut self, v: usize) -> Self {
        self.restarts = v;
        self
    }

    /// Use a different distance kind (ablation only; the paper's
    /// algorithm is defined for Manhattan).
    pub fn distance(mut self, kind: DistanceKind) -> Self {
        self.distance = kind;
        self
    }

    /// Total number of dimensions distributed over the clusters:
    /// `round(k·l)`.
    pub fn total_dimensions(&self) -> usize {
        (self.k as f64 * self.l).round() as usize
    }

    /// Validate this configuration against a dataset shape.
    pub fn validate(&self, n: usize, d: usize) -> Result<(), ProclusError> {
        if self.k == 0 {
            return Err(ProclusError::InvalidParameters("k must be positive".into()));
        }
        if !self.l.is_finite() || self.l < 2.0 {
            return Err(ProclusError::InvalidParameters(format!(
                "l must be at least 2 (every cluster needs >= 2 dimensions), got {}",
                self.l
            )));
        }
        if self.l > d as f64 {
            return Err(ProclusError::DimensionalityTooLow { d, l: self.l });
        }
        let total = self.total_dimensions();
        if (total as f64 - self.k as f64 * self.l).abs() > 1e-9 {
            return Err(ProclusError::InvalidParameters(format!(
                "k*l must be integral, got {} * {} = {}",
                self.k,
                self.l,
                self.k as f64 * self.l
            )));
        }
        if total > self.k * d {
            return Err(ProclusError::DimensionalityTooLow { d, l: self.l });
        }
        if self.sample_factor == 0 || self.medoid_factor == 0 {
            return Err(ProclusError::InvalidParameters(
                "sample_factor and medoid_factor must be positive".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.min_deviation) {
            return Err(ProclusError::InvalidParameters(format!(
                "min_deviation must be in [0, 1], got {}",
                self.min_deviation
            )));
        }
        if n < self.k {
            return Err(ProclusError::TooFewPoints {
                needed: self.k,
                got: n,
            });
        }
        Ok(())
    }

    /// Run PROCLUS on `points` (rows = points).
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid for the shape
    /// of `points` — never panics on valid configurations.
    pub fn fit(&self, points: &Matrix) -> Result<ProclusModel, ProclusError> {
        crate::iterate::run(self, points)
    }

    /// [`Proclus::fit`] with a [`proclus_obs::Recorder`] observing the
    /// run: structured per-round events (localities, chosen dimensions
    /// and their Z-scores, assignment counts, objectives, swap
    /// decisions) plus phase spans and pool counters. The event stream
    /// is deterministic given `(self, points)` and independent of
    /// [`Proclus::threads`]; `fit` is exactly this with the no-op
    /// recorder.
    ///
    /// # Errors
    ///
    /// Same as [`Proclus::fit`].
    pub fn fit_traced(
        &self,
        points: &Matrix,
        rec: &dyn proclus_obs::Recorder,
    ) -> Result<ProclusModel, ProclusError> {
        crate::iterate::run_traced(self, points, rec)
    }

    /// Run PROCLUS starting the hill climb from an explicit medoid set
    /// (one climb, no restarts) — useful for reproducing a specific run
    /// or studying the search from controlled starting points.
    ///
    /// # Errors
    ///
    /// Rejects duplicate/out-of-range medoids, a count different from
    /// `k`, and the same shape errors as [`Proclus::fit`].
    pub fn fit_with_initial_medoids(
        &self,
        points: &Matrix,
        medoids: &[usize],
    ) -> Result<ProclusModel, ProclusError> {
        crate::iterate::run_from_medoids(self, points, medoids)
    }

    /// [`Proclus::fit_with_initial_medoids`] with a recorder observing
    /// the single climb (see [`Proclus::fit_traced`]).
    ///
    /// # Errors
    ///
    /// Same as [`Proclus::fit_with_initial_medoids`].
    pub fn fit_with_initial_medoids_traced(
        &self,
        points: &Matrix,
        medoids: &[usize],
        rec: &dyn proclus_obs::Recorder,
    ) -> Result<ProclusModel, ProclusError> {
        crate::iterate::run_from_medoids_traced(self, points, medoids, rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let p = Proclus::new(5, 7.0);
        assert_eq!(p.k, 5);
        assert_eq!(p.l, 7.0);
        assert_eq!(p.min_deviation, 0.1);
        assert_eq!(p.distance, DistanceKind::Manhattan);
        assert_eq!(p.total_dimensions(), 35);
    }

    #[test]
    fn fractional_l_with_integral_product_is_ok() {
        let p = Proclus::new(4, 2.5);
        assert_eq!(p.total_dimensions(), 10);
        assert!(p.validate(100, 10).is_ok());
    }

    #[test]
    fn fractional_l_with_nonintegral_product_is_rejected() {
        let p = Proclus::new(3, 2.5); // 7.5 dimensions total
        assert!(matches!(
            p.validate(100, 10),
            Err(ProclusError::InvalidParameters(_))
        ));
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(Proclus::new(0, 3.0).validate(10, 5).is_err());
        assert!(Proclus::new(2, 1.0).validate(10, 5).is_err());
        assert!(Proclus::new(2, 6.0).validate(10, 5).is_err()); // l > d
        assert!(Proclus::new(20, 3.0).validate(10, 5).is_err()); // n < k
        assert!(Proclus::new(2, 3.0)
            .min_deviation(1.5)
            .validate(10, 5)
            .is_err());
        let mut p = Proclus::new(2, 3.0);
        p.sample_factor = 0;
        assert!(p.validate(10, 5).is_err());
    }

    #[test]
    fn builder_methods_chain() {
        let p = Proclus::new(3, 4.0)
            .seed(9)
            .sample_factor(10)
            .medoid_factor(2)
            .min_deviation(0.2)
            .max_stale_rounds(5)
            .max_rounds(50)
            .distance(DistanceKind::Euclidean);
        assert_eq!(p.rng_seed, 9);
        assert_eq!(p.sample_factor, 10);
        assert_eq!(p.medoid_factor, 2);
        assert_eq!(p.min_deviation, 0.2);
        assert_eq!(p.max_stale_rounds, 5);
        assert_eq!(p.max_rounds, 50);
        assert_eq!(p.distance, DistanceKind::Euclidean);
    }
}
