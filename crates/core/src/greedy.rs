//! The greedy farthest-point selection of Gonzalez (Figure 3).
//!
//! Starting from one random seed point, repeatedly add the candidate
//! whose distance to the already-chosen set is largest. In full
//! dimensionality with well-separated clusters this yields a *piercing*
//! set; PROCLUS uses it only to shrink a random sample down to the
//! candidate medoid set `M`, precisely because it also loves outliers.

use proclus_math::order::total_cmp_nan_first;
use proclus_math::{Distance, Matrix};
use rand::Rng;

/// Select `count` well-scattered members of `candidates` (global point
/// indices into `points`) by greedy farthest-point traversal, seeded
/// with a random candidate drawn from `rng`.
///
/// Returns fewer than `count` indices only when `candidates` has fewer
/// than `count` entries (every candidate is then returned).
pub fn greedy_select<D: Distance, R: Rng + ?Sized>(
    points: &Matrix,
    candidates: &[usize],
    count: usize,
    metric: &D,
    rng: &mut R,
) -> Vec<usize> {
    if candidates.is_empty() || count == 0 {
        return Vec::new();
    }
    if candidates.len() <= count {
        return candidates.to_vec();
    }

    let mut chosen = Vec::with_capacity(count);
    let first = candidates[rng.random_range(0..candidates.len())];
    chosen.push(first);

    // dist[c] = distance from candidates[c] to the closest chosen point.
    let mut dist: Vec<f64> = candidates
        .iter()
        .map(|&c| metric.distance(points.row(c), points.row(first)))
        .collect();

    while chosen.len() < count {
        // Farthest candidate from the chosen set.
        // NaN-safe: a NaN distance (degenerate data) ranks first, i.e.
        // smallest, so it can never be selected as the farthest point.
        let Some((next_pos, _)) = dist
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| total_cmp_nan_first(**a, **b))
        else {
            // Unreachable (candidates is nonempty here), but stopping
            // with the shorter prefix beats panicking.
            break;
        };
        let next = candidates[next_pos];
        chosen.push(next);
        // Relax distances against the newly chosen point. The chosen
        // point itself gets distance 0 and is never picked again.
        let next_row = points.row(next);
        for (slot, &c) in dist.iter_mut().zip(candidates) {
            let d = metric.distance(points.row(c), next_row);
            if d < *slot {
                *slot = d;
            }
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use proclus_math::DistanceKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    /// Three tight groups on a line; greedy with count=3 must pick one
    /// point from each group regardless of the random seed point.
    #[test]
    fn greedy_pierces_separated_groups() {
        let pts: Vec<[f64; 1]> = vec![
            [0.0],
            [0.5],
            [1.0], // group 0
            [100.0],
            [100.5],
            [101.0], // group 1
            [200.0],
            [200.5],
            [201.0], // group 2
        ];
        let m = Matrix::from_rows(&pts, 1);
        let candidates: Vec<usize> = (0..9).collect();
        for seed in 0..20 {
            let mut r = StdRng::seed_from_u64(seed);
            let sel = greedy_select(&m, &candidates, 3, &DistanceKind::Manhattan, &mut r);
            let mut groups: Vec<usize> = sel.iter().map(|&i| i / 3).collect();
            groups.sort_unstable();
            assert_eq!(groups, vec![0, 1, 2], "seed {seed}: {sel:?}");
        }
    }

    #[test]
    fn greedy_returns_requested_count_of_distinct_points() {
        let m = Matrix::from_rows(
            &(0..50)
                .map(|i| [i as f64, (i * 7 % 13) as f64])
                .collect::<Vec<_>>(),
            2,
        );
        let candidates: Vec<usize> = (0..50).collect();
        let sel = greedy_select(&m, &candidates, 10, &DistanceKind::Manhattan, &mut rng());
        assert_eq!(sel.len(), 10);
        let mut dedup = sel.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "selection must be distinct");
    }

    #[test]
    fn greedy_small_candidate_set_returns_all() {
        let m = Matrix::from_rows(&[[0.0], [1.0]], 1);
        let sel = greedy_select(&m, &[0, 1], 5, &DistanceKind::Manhattan, &mut rng());
        assert_eq!(sel, vec![0, 1]);
    }

    #[test]
    fn greedy_empty_inputs() {
        let m = Matrix::from_rows(&[[0.0]], 1);
        assert!(greedy_select(&m, &[], 3, &DistanceKind::Manhattan, &mut rng()).is_empty());
        assert!(greedy_select(&m, &[0], 0, &DistanceKind::Manhattan, &mut rng()).is_empty());
    }

    #[test]
    fn greedy_respects_candidate_subset() {
        // Points 0..4 exist but only {1, 3} are candidates.
        let m = Matrix::from_rows(&[[0.0], [1.0], [2.0], [3.0]], 1);
        let sel = greedy_select(&m, &[1, 3], 2, &DistanceKind::Manhattan, &mut rng());
        let mut s = sel.clone();
        s.sort_unstable();
        assert_eq!(s, vec![1, 3]);
    }

    /// Regression: a NaN coordinate used to panic the farthest-point
    /// `max_by` (`partial_cmp().unwrap()`). NaN distances now rank
    /// smallest, so the degenerate point is simply never selected.
    #[test]
    fn greedy_survives_nan_coordinates() {
        let m = Matrix::from_rows(&[[0.0], [f64::NAN], [10.0], [20.0], [30.0]], 1);
        let candidates: Vec<usize> = (0..5).collect();
        for seed in 0..8 {
            let mut r = StdRng::seed_from_u64(seed);
            let sel = greedy_select(&m, &candidates, 3, &DistanceKind::Manhattan, &mut r);
            assert_eq!(sel.len(), 3);
            // The NaN point is never *greedily* chosen; it can only
            // appear as the random seed point.
            assert!(!sel[1..].contains(&1), "seed {seed}: {sel:?}");
        }
    }

    /// The greedy rule: each added point maximizes min-distance to the
    /// chosen prefix. Verify the invariant holds step by step.
    #[test]
    fn greedy_maximizes_min_distance_at_each_step() {
        let pts: Vec<[f64; 2]> = (0..30)
            .map(|i| [(i * 17 % 30) as f64, (i * 23 % 29) as f64])
            .collect();
        let m = Matrix::from_rows(&pts, 2);
        let candidates: Vec<usize> = (0..30).collect();
        let metric = DistanceKind::Manhattan;
        let sel = greedy_select(&m, &candidates, 6, &metric, &mut rng());
        for step in 1..sel.len() {
            let chosen = &sel[..step];
            let picked = sel[step];
            let d_picked = chosen
                .iter()
                .map(|&c| metric.eval(m.row(picked), m.row(c)))
                .fold(f64::INFINITY, f64::min);
            for &other in &candidates {
                if sel[..=step].contains(&other) {
                    continue;
                }
                let d_other = chosen
                    .iter()
                    .map(|&c| metric.eval(m.row(other), m.row(c)))
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    d_picked >= d_other - 1e-12,
                    "step {step}: picked {picked} ({d_picked}) but {other} is farther ({d_other})"
                );
            }
        }
    }
}
