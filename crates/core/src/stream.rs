//! Continuous-ingest streaming front end for PROCLUS: deterministic
//! sampling, drift detection, and gated model rollover.
//!
//! The batch setting of the paper assumes the full dataset is in hand.
//! This module serves the complementary deployment shape: points arrive
//! in batches, a *live* model (from the crash-safe
//! [`registry`](crate::registry)) classifies them, and the
//! [`StreamServer`] decides — deterministically — when the live model
//! has gone stale and a refit should replace it.
//!
//! Three cooperating pieces:
//!
//! * [`WindowSampler`] — a sliding window of the most recent points
//!   (what candidate models are fitted on) plus an Algorithm-R
//!   reservoir frozen over the points seen since the last promotion
//!   (the *reference* distribution).
//! * [`DriftDetector`] — compares window against reservoir through a
//!   fixed set of seeded random unit projections (in the spirit of the
//!   projection-based two-sample tests of Kerber–Raghvendra,
//!   arXiv:1407.2063): the score is the maximum over projections of
//!   the standardized mean shift. Cheap, dimension-robust, and a pure
//!   function of the data and seed.
//! * [`rollover`](crate::rollover) — the Shadow → Canary → Promote
//!   state machine that fits and gates a candidate when drift persists.
//!
//! # Determinism
//!
//! Every decision (quarantine, drift, trigger, gate verdict, promote /
//! rollback) is a pure function of `(params, config, gates, batches,
//! seed)`. Thread count affects only scheduling inside the candidate
//! fits, which are bit-identical by the workspace guarantee — so the
//! emitted `stream.*` / rollover event log is byte-identical for every
//! thread count (pinned by a golden digest in the streaming test
//! tier).
//!
//! # Fault handling
//!
//! [`StreamServer::ingest_batch`] never fails: malformed batches
//! (empty, wrong dimensionality, non-finite coordinates) are
//! *quarantined* — recorded in the diagnostics and the event stream,
//! with the live model left serving untouched. Batches that fail frame
//! decoding upstream (see `proclus-data`'s chunk reader) are reported
//! through [`StreamServer::quarantine_corrupt`].

use std::collections::VecDeque;
use std::fmt;
use std::path::Path;

use proclus_math::Matrix;
use proclus_obs::{Event, Recorder};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::error::ProclusError;
use crate::model::ProclusModel;
use crate::params::Proclus;
use crate::registry::{ModelRegistry, RecoveryReport, RegistryError};
use crate::rollover::{self, RolloverOutcome, RolloverReport};

/// Seed-mixing constant for the reservoir RNG (distinct per subsystem
/// so one user seed cannot correlate the samplers).
const RESERVOIR_SALT: u64 = 0x5EED_0001_D5B7_C0DE;
/// Seed-mixing constant for the drift detector's projections.
const PROJECTION_SALT: u64 = 0x5EED_0002_9E37_79B9;

/// Configuration of the streaming front end (window sizes, drift
/// sensitivity, trigger pacing). Validate with
/// [`StreamConfig::validate`]; all fields are public for builder-free
/// construction.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamConfig {
    /// Sliding-window capacity: candidate models are fitted on the
    /// most recent `window` accepted points.
    pub window: usize,
    /// Minimum accepted points in the window before any fit (bootstrap
    /// or rebuild) is attempted.
    pub min_fit_points: usize,
    /// Reservoir capacity for the long-term reference sample.
    pub reservoir: usize,
    /// Number of random unit projections the drift detector compares
    /// window and reservoir through.
    pub projections: usize,
    /// Drift score above which a batch counts as drifted.
    pub drift_threshold: f64,
    /// Consecutive drifted batches required to trigger a rebuild.
    pub patience: usize,
    /// Accepted batches to wait after any rollover (promoted *or*
    /// rolled back) before another trigger can fire.
    pub cooldown: usize,
    /// Seed for the sampling and projection PRNGs. Independent of the
    /// fit seed in [`Proclus::rng_seed`].
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window: 2048,
            min_fit_points: 256,
            reservoir: 256,
            projections: 8,
            drift_threshold: 0.6,
            patience: 2,
            cooldown: 2,
            seed: 0,
        }
    }
}

impl StreamConfig {
    /// Check the configuration for internal consistency.
    ///
    /// # Errors
    ///
    /// [`ProclusError::InvalidParameters`] naming the offending field.
    pub fn validate(&self) -> Result<(), ProclusError> {
        if self.window == 0 {
            return Err(ProclusError::InvalidParameters(
                "stream window must be positive".into(),
            ));
        }
        if self.min_fit_points == 0 || self.min_fit_points > self.window {
            return Err(ProclusError::InvalidParameters(format!(
                "min_fit_points must be in 1..=window ({}), got {}",
                self.window, self.min_fit_points
            )));
        }
        if self.reservoir == 0 {
            return Err(ProclusError::InvalidParameters(
                "reservoir capacity must be positive".into(),
            ));
        }
        if self.projections == 0 {
            return Err(ProclusError::InvalidParameters(
                "drift detector needs at least one projection".into(),
            ));
        }
        if !self.drift_threshold.is_finite() || self.drift_threshold <= 0.0 {
            return Err(ProclusError::InvalidParameters(format!(
                "drift_threshold must be finite and positive, got {}",
                self.drift_threshold
            )));
        }
        if self.patience == 0 {
            return Err(ProclusError::InvalidParameters(
                "patience must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Promotion-gate thresholds for the rollover state machine (see
/// [`crate::rollover`] for where each one is enforced).
#[derive(Clone, Debug, PartialEq)]
pub struct GateConfig {
    /// Shadow gate: minimum projected silhouette of the candidate on
    /// the fit window. Set to any value `<= -1.0` to disable the
    /// silhouette gate (a silhouette is always in `[-1, 1]`).
    pub min_silhouette: f64,
    /// Sample cap forwarded to the silhouette evaluation.
    pub silhouette_samples: usize,
    /// Canary gate: maximum allowed ratio of the candidate's mean
    /// nearest-medoid cost to the live model's, over the canary subset.
    pub max_cost_ratio: f64,
    /// Shadow gate: maximum fraction of the window the candidate may
    /// classify as outliers.
    pub max_outlier_fraction: f64,
    /// Fraction of the window routed to the canary comparison.
    pub canary_fraction: f64,
    /// Canary gate: minimum live-vs-candidate agreement (ARI), only
    /// enforced while the live model still covers the canary (see
    /// `min_live_coverage`).
    pub min_canary_ari: f64,
    /// Minimum fraction of canary points the live model must still
    /// cluster for the ARI gate to be *enforced*; below this the live
    /// labeling is itself stale (that is drift evidence, not candidate
    /// failure) and the ARI is recorded but not gating.
    pub min_live_coverage: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            min_silhouette: 0.05,
            silhouette_samples: 64,
            max_cost_ratio: 1.25,
            max_outlier_fraction: 0.5,
            canary_fraction: 0.25,
            min_canary_ari: 0.0,
            min_live_coverage: 0.25,
        }
    }
}

impl GateConfig {
    /// Check the gate thresholds for internal consistency.
    ///
    /// # Errors
    ///
    /// [`ProclusError::InvalidParameters`] naming the offending field.
    pub fn validate(&self) -> Result<(), ProclusError> {
        if self.min_silhouette.is_nan() {
            return Err(ProclusError::InvalidParameters(
                "min_silhouette must not be NaN".into(),
            ));
        }
        if !self.max_cost_ratio.is_finite() || self.max_cost_ratio <= 0.0 {
            return Err(ProclusError::InvalidParameters(format!(
                "max_cost_ratio must be finite and positive, got {}",
                self.max_cost_ratio
            )));
        }
        if !(0.0..=1.0).contains(&self.max_outlier_fraction) {
            return Err(ProclusError::InvalidParameters(format!(
                "max_outlier_fraction must be in [0, 1], got {}",
                self.max_outlier_fraction
            )));
        }
        if !(self.canary_fraction > 0.0 && self.canary_fraction <= 1.0) {
            return Err(ProclusError::InvalidParameters(format!(
                "canary_fraction must be in (0, 1], got {}",
                self.canary_fraction
            )));
        }
        if self.min_canary_ari.is_nan() {
            return Err(ProclusError::InvalidParameters(
                "min_canary_ari must not be NaN".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.min_live_coverage) {
            return Err(ProclusError::InvalidParameters(format!(
                "min_live_coverage must be in [0, 1], got {}",
                self.min_live_coverage
            )));
        }
        Ok(())
    }
}

/// Reasons a [`StreamServer`] cannot be constructed.
#[derive(Debug)]
pub enum StreamError {
    /// The stream or gate configuration is invalid.
    Config(ProclusError),
    /// The model registry could not be opened or its serving model
    /// could not be loaded.
    Registry(RegistryError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Config(e) => write!(f, "invalid stream configuration: {e}"),
            StreamError::Registry(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Config(e) => Some(e),
            StreamError::Registry(e) => Some(e),
        }
    }
}

/// Sliding window + Algorithm-R reservoir over the accepted stream.
///
/// The window holds the most recent `capacity` points in arrival
/// order. The reservoir is a uniform sample of everything accepted
/// since its last [`reset`](WindowSampler::reset) and serves as the
/// drift detector's reference distribution; it is reseeded
/// deterministically per epoch so replaying the same batches always
/// reproduces the same sample.
#[derive(Debug)]
pub struct WindowSampler {
    window: VecDeque<Vec<f64>>,
    window_capacity: usize,
    reservoir: Vec<Vec<f64>>,
    reservoir_capacity: usize,
    seen: u64,
    rng: StdRng,
    seed: u64,
}

impl WindowSampler {
    /// A sampler with the given window and reservoir capacities,
    /// starting at epoch 0.
    pub fn new(window_capacity: usize, reservoir_capacity: usize, seed: u64) -> Self {
        WindowSampler {
            window: VecDeque::with_capacity(window_capacity),
            window_capacity,
            reservoir: Vec::with_capacity(reservoir_capacity),
            reservoir_capacity,
            seen: 0,
            rng: Self::epoch_rng(seed, 0),
            seed,
        }
    }

    fn epoch_rng(seed: u64, epoch: u64) -> StdRng {
        StdRng::seed_from_u64(seed ^ RESERVOIR_SALT ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Accept one point: append to the window (evicting the oldest when
    /// full) and offer it to the reservoir (Vitter's Algorithm R).
    pub fn push(&mut self, row: &[f64]) {
        if self.window.len() == self.window_capacity {
            self.window.pop_front();
        }
        self.window.push_back(row.to_vec());
        self.seen += 1;
        if self.reservoir.len() < self.reservoir_capacity {
            self.reservoir.push(row.to_vec());
        } else {
            let j = self.rng.random_range(0..self.seen);
            if (j as usize) < self.reservoir_capacity {
                self.reservoir[j as usize] = row.to_vec();
            }
        }
    }

    /// Start a new reference epoch (called on every promotion): clear
    /// the reservoir, reseed its RNG from `(seed, epoch)`, and re-offer
    /// the current window so the new reference describes the
    /// distribution the promoted model was fitted on.
    pub fn reset(&mut self, epoch: u64) {
        self.rng = Self::epoch_rng(self.seed, epoch);
        self.reservoir.clear();
        self.seen = 0;
        let rows: Vec<Vec<f64>> = self.window.iter().cloned().collect();
        for row in &rows {
            self.seen += 1;
            if self.reservoir.len() < self.reservoir_capacity {
                self.reservoir.push(row.clone());
            } else {
                let j = self.rng.random_range(0..self.seen);
                if (j as usize) < self.reservoir_capacity {
                    self.reservoir[j as usize] = row.clone();
                }
            }
        }
    }

    /// Number of points currently in the window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// The window as a matrix, oldest row first (the candidate-fit
    /// input; `d` must be supplied because an empty window has no
    /// intrinsic width).
    pub fn window_matrix(&self, d: usize) -> Matrix {
        let mut data = Vec::with_capacity(self.window.len() * d);
        for row in &self.window {
            data.extend_from_slice(row);
        }
        Matrix::from_vec(data, self.window.len(), d)
    }

    /// The reservoir's current sample.
    pub fn reservoir_rows(&self) -> &[Vec<f64>] {
        &self.reservoir
    }
}

/// Projection-based two-sample drift score between the sliding window
/// and the reservoir reference.
///
/// `projections` seeded unit directions are drawn lazily when the
/// dimensionality is first known; the score is
/// `max_p |mean_window(p) - mean_reservoir(p)| / (std_reservoir(p) + ε)`
/// — a standardized mean shift along the worst projection.
#[derive(Debug)]
pub struct DriftDetector {
    directions: Vec<Vec<f64>>,
    count: usize,
    seed: u64,
}

impl DriftDetector {
    /// A detector with `count` projections derived from `seed`.
    pub fn new(count: usize, seed: u64) -> Self {
        DriftDetector {
            directions: Vec::new(),
            count,
            seed,
        }
    }

    fn ensure_directions(&mut self, d: usize) {
        if !self.directions.is_empty() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ PROJECTION_SALT);
        for _ in 0..self.count {
            let mut v: Vec<f64> = (0..d).map(|_| rng.random_range(-1.0..1.0)).collect();
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 0.0 {
                for x in &mut v {
                    *x /= norm;
                }
            } else if let Some(first) = v.first_mut() {
                *first = 1.0;
            }
            self.directions.push(v);
        }
    }

    /// Score `recent` (the window) against `reference` (the
    /// reservoir). Returns NaN when either side is too small to
    /// compare (fewer than 2 points).
    pub fn score(&mut self, recent: &VecDeque<Vec<f64>>, reference: &[Vec<f64>]) -> f64 {
        if recent.len() < 2 || reference.len() < 2 {
            return f64::NAN;
        }
        let d = reference[0].len();
        self.ensure_directions(d);
        let mut worst = 0.0f64;
        for dir in &self.directions {
            let dot = |row: &[f64]| -> f64 { row.iter().zip(dir).map(|(a, b)| a * b).sum() };
            let mut rsum = 0.0;
            let mut rsq = 0.0;
            for row in reference {
                let p = dot(row);
                rsum += p;
                rsq += p * p;
            }
            let rn = reference.len() as f64;
            let rmean = rsum / rn;
            let rvar = (rsq / rn - rmean * rmean).max(0.0);
            let mut wsum = 0.0;
            for row in recent {
                wsum += dot(row);
            }
            let wmean = wsum / recent.len() as f64;
            let shift = (wmean - rmean).abs() / (rvar.sqrt() + 1e-9);
            if shift > worst {
                worst = shift;
            }
        }
        worst
    }
}

/// What happened to one ingested batch.
#[derive(Debug)]
pub struct BatchReport {
    /// 1-based batch sequence number.
    pub batch: u64,
    /// `false` when the batch was quarantined.
    pub accepted: bool,
    /// Why the batch was quarantined, when it was.
    pub quarantine_reason: Option<&'static str>,
    /// Drift score after ingest (NaN before the reference exists or on
    /// quarantined batches).
    pub drift_score: f64,
    /// Whether this batch counted toward the drift patience run.
    pub drifted: bool,
    /// The rollover attempt this batch triggered, if any.
    pub rollover: Option<RolloverReport>,
}

/// Running account of a stream session (rendered by the CLI and
/// asserted on by the robustness tier).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StreamDiagnostics {
    /// Batches ingested (accepted + quarantined).
    pub batches: u64,
    /// Total accepted points.
    pub accepted_points: usize,
    /// Quarantined batches: `(batch number, reason)`.
    pub quarantined: Vec<(u64, &'static str)>,
    /// Times the drift patience was exhausted.
    pub drift_detections: u64,
    /// Rollover attempts that ended in rollback.
    pub rollbacks: u64,
    /// Rollover attempts that promoted.
    pub promotions: u64,
}

/// The streaming server: ingests batches, serves a live model from the
/// registry, and drives gated rollovers when the stream drifts.
///
/// See the module docs for the decision pipeline and its determinism
/// contract.
pub struct StreamServer<'a> {
    params: Proclus,
    config: StreamConfig,
    gates: GateConfig,
    registry: ModelRegistry,
    live: Option<(u64, ProclusModel)>,
    sampler: WindowSampler,
    detector: DriftDetector,
    rec: &'a dyn Recorder,
    dims: Option<usize>,
    batch: u64,
    rebuilds: u64,
    drift_run: usize,
    cooldown: usize,
    diagnostics: StreamDiagnostics,
}

impl<'a> StreamServer<'a> {
    /// Open the registry at `registry_dir` (running its recovery scan)
    /// and construct a server. A valid `CURRENT` model resumes serving
    /// immediately.
    ///
    /// # Errors
    ///
    /// [`StreamError::Config`] for invalid configuration,
    /// [`StreamError::Registry`] when the registry cannot be opened or
    /// its serving model cannot be loaded.
    pub fn new(
        params: Proclus,
        config: StreamConfig,
        gates: GateConfig,
        registry_dir: &Path,
        rec: &'a dyn Recorder,
    ) -> Result<(Self, RecoveryReport), StreamError> {
        config.validate().map_err(StreamError::Config)?;
        gates.validate().map_err(StreamError::Config)?;
        let (registry, report) =
            ModelRegistry::open(registry_dir).map_err(StreamError::Registry)?;
        let live = registry.load_current().map_err(StreamError::Registry)?;
        let dims = live
            .as_ref()
            .and_then(|(_, m)| m.clusters().first().map(|c| c.medoid.len()));
        let sampler = WindowSampler::new(config.window, config.reservoir, config.seed);
        let detector = DriftDetector::new(config.projections, config.seed);
        Ok((
            StreamServer {
                params,
                config,
                gates,
                registry,
                live,
                sampler,
                detector,
                rec,
                dims,
                batch: 0,
                rebuilds: 0,
                drift_run: 0,
                cooldown: 0,
                diagnostics: StreamDiagnostics::default(),
            },
            report,
        ))
    }

    /// The serving model, if one has been bootstrapped or recovered.
    pub fn live(&self) -> Option<&ProclusModel> {
        self.live.as_ref().map(|(_, m)| m)
    }

    /// Generation of the serving model.
    pub fn live_generation(&self) -> Option<u64> {
        self.live.as_ref().map(|(g, _)| *g)
    }

    /// The backing registry.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The session diagnostics so far.
    pub fn diagnostics(&self) -> &StreamDiagnostics {
        &self.diagnostics
    }

    /// The current window as a fit-ready matrix (empty when no batch
    /// has been accepted yet).
    pub fn window_matrix(&self) -> Matrix {
        self.sampler.window_matrix(self.dims.unwrap_or(0))
    }

    fn quarantine(&mut self, reason: &'static str) -> BatchReport {
        self.batch += 1;
        self.diagnostics.batches += 1;
        self.diagnostics.quarantined.push((self.batch, reason));
        if self.rec.enabled() {
            self.rec.event(&Event::StreamQuarantine {
                batch: self.batch,
                reason,
            });
        }
        BatchReport {
            batch: self.batch,
            accepted: false,
            quarantine_reason: Some(reason),
            drift_score: f64::NAN,
            drifted: false,
            rollover: None,
        }
    }

    /// Record a batch that failed *upstream* decoding (truncated /
    /// corrupt chunk frame) as quarantined, without touching the window
    /// or the live model. The caller consumes the decode error; this
    /// keeps the batch numbering and decision log aware of it.
    pub fn quarantine_corrupt(&mut self) -> BatchReport {
        self.quarantine("corrupt_chunk")
    }

    /// Ingest one batch. Never fails: malformed batches are
    /// quarantined; accepted batches update the window/reservoir, are
    /// scored for drift, and may trigger a gated rollover (bootstrap or
    /// rebuild). The returned report says exactly what happened.
    pub fn ingest_batch(&mut self, batch: &Matrix) -> BatchReport {
        if batch.rows() == 0 {
            return self.quarantine("empty_batch");
        }
        let d = batch.cols();
        if let Some(expect) = self.dims {
            if d != expect {
                return self.quarantine("dimension_mismatch");
            }
        }
        if batch.as_slice().iter().any(|v| !v.is_finite()) {
            return self.quarantine("non_finite");
        }

        // Accept: the batch joins the window and the reservoir.
        self.batch += 1;
        self.diagnostics.batches += 1;
        self.diagnostics.accepted_points += batch.rows();
        self.dims = Some(d);
        for row in batch.iter_rows() {
            self.sampler.push(row);
        }
        let score = self
            .detector
            .score(&self.sampler.window, &self.sampler.reservoir);
        let drifted =
            self.live.is_some() && score.is_finite() && score > self.config.drift_threshold;
        if self.rec.enabled() {
            self.rec.event(&Event::StreamBatch {
                batch: self.batch,
                rows: batch.rows(),
                window: self.sampler.window_len(),
                drift_score: score,
                drifted,
            });
        }
        if drifted {
            self.drift_run += 1;
        } else {
            self.drift_run = 0;
        }
        self.cooldown = self.cooldown.saturating_sub(1);

        let enough = self.sampler.window_len() >= self.config.min_fit_points;
        let trigger = if self.cooldown > 0 || !enough {
            None
        } else if self.live.is_none() {
            Some("bootstrap")
        } else if self.drift_run >= self.config.patience {
            self.diagnostics.drift_detections += 1;
            if self.rec.enabled() {
                self.rec.event(&Event::DriftDetected {
                    batch: self.batch,
                    score,
                    threshold: self.config.drift_threshold,
                });
            }
            self.drift_run = 0;
            Some("drift")
        } else {
            None
        };

        let rollover = trigger.map(|t| self.run_rollover(t, d));
        BatchReport {
            batch: self.batch,
            accepted: true,
            quarantine_reason: None,
            drift_score: score,
            drifted,
            rollover,
        }
    }

    fn run_rollover(&mut self, trigger: &'static str, d: usize) -> RolloverReport {
        self.rebuilds += 1;
        let window = self.sampler.window_matrix(d);
        let (report, promoted) = rollover::run(
            &self.params,
            &self.gates,
            &window,
            self.live.as_ref(),
            &mut self.registry,
            self.rebuilds,
            trigger,
            self.config.seed,
            self.rec,
        );
        match report.outcome {
            RolloverOutcome::Promoted { .. } => {
                self.live = promoted;
                self.diagnostics.promotions += 1;
                // New serving model ⇒ new reference epoch: the
                // reservoir restarts from the window the model was
                // fitted on.
                self.sampler.reset(self.rebuilds);
                self.drift_run = 0;
            }
            RolloverOutcome::RolledBack { .. } => {
                self.diagnostics.rollbacks += 1;
            }
        }
        self.cooldown = self.config.cooldown;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proclus_obs::NoopRecorder;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("proclus-stream-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn blob(center: f64, rows: usize, d: usize, jitter_seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(jitter_seed);
        let mut data = Vec::with_capacity(rows * d);
        for _ in 0..rows {
            for _ in 0..d {
                data.push(center + rng.random_range(-1.0..1.0));
            }
        }
        Matrix::from_vec(data, rows, d)
    }

    #[test]
    fn config_validation_rejects_bad_fields() {
        let ok = StreamConfig::default();
        assert!(ok.validate().is_ok());
        for bad in [
            StreamConfig {
                window: 0,
                ..ok.clone()
            },
            StreamConfig {
                min_fit_points: 0,
                ..ok.clone()
            },
            StreamConfig {
                min_fit_points: 9999,
                ..ok.clone()
            },
            StreamConfig {
                reservoir: 0,
                ..ok.clone()
            },
            StreamConfig {
                projections: 0,
                ..ok.clone()
            },
            StreamConfig {
                drift_threshold: f64::NAN,
                ..ok.clone()
            },
            StreamConfig {
                drift_threshold: -1.0,
                ..ok.clone()
            },
            StreamConfig {
                patience: 0,
                ..ok.clone()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
        let gates = GateConfig::default();
        assert!(gates.validate().is_ok());
        for bad in [
            GateConfig {
                min_silhouette: f64::NAN,
                ..gates.clone()
            },
            GateConfig {
                max_cost_ratio: 0.0,
                ..gates.clone()
            },
            GateConfig {
                max_outlier_fraction: 1.5,
                ..gates.clone()
            },
            GateConfig {
                canary_fraction: 0.0,
                ..gates.clone()
            },
            GateConfig {
                min_live_coverage: -0.1,
                ..gates.clone()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn sampler_window_slides_and_reservoir_is_deterministic() {
        let mut a = WindowSampler::new(4, 3, 11);
        let mut b = WindowSampler::new(4, 3, 11);
        for i in 0..50 {
            let row = [i as f64, (i * 2) as f64];
            a.push(&row);
            b.push(&row);
        }
        assert_eq!(a.window_len(), 4);
        let w = a.window_matrix(2);
        assert_eq!(w.row(0), &[46.0, 92.0]);
        assert_eq!(w.row(3), &[49.0, 98.0]);
        assert_eq!(a.reservoir_rows(), b.reservoir_rows());
        a.reset(1);
        b.reset(1);
        assert_eq!(a.reservoir_rows(), b.reservoir_rows());
        // Post-reset the reservoir describes only the window.
        assert_eq!(a.reservoir_rows().len(), 3);
        for row in a.reservoir_rows() {
            assert!(row[0] >= 46.0);
        }
    }

    #[test]
    fn drift_detector_separates_shifted_distributions() {
        let mut det = DriftDetector::new(8, 5);
        let reference: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 17) as f64 * 0.1, (i % 13) as f64 * 0.1, 0.0])
            .collect();
        let same: VecDeque<Vec<f64>> = reference.iter().cloned().collect();
        let near = det.score(&same, &reference);
        assert!(near.is_finite() && near < 0.3, "same data scored {near}");
        let shifted: VecDeque<Vec<f64>> = reference
            .iter()
            .map(|r| vec![r[0] + 40.0, r[1] - 25.0, r[2]])
            .collect();
        let far = det.score(&shifted, &reference);
        assert!(far > 5.0, "shifted data scored only {far}");
        // Too-small sides score NaN, never a spurious number.
        let tiny: VecDeque<Vec<f64>> = VecDeque::new();
        assert!(det.score(&tiny, &reference).is_nan());
    }

    #[test]
    fn malformed_batches_are_quarantined_not_fatal() {
        let dir = tmp_dir("quarantine");
        let rec = NoopRecorder;
        let params = Proclus::new(2, 2.0).seed(3).restarts(1);
        let config = StreamConfig {
            window: 64,
            min_fit_points: 48,
            reservoir: 16,
            ..StreamConfig::default()
        };
        let (mut server, report) =
            StreamServer::new(params, config, GateConfig::default(), &dir, &rec).unwrap();
        assert!(report.is_clean());

        let empty = Matrix::zeros(0, 3);
        let r = server.ingest_batch(&empty);
        assert_eq!(r.quarantine_reason, Some("empty_batch"));

        let good = blob(10.0, 8, 3, 1);
        assert!(server.ingest_batch(&good).accepted);

        let wrong = blob(10.0, 4, 2, 2);
        let r = server.ingest_batch(&wrong);
        assert_eq!(r.quarantine_reason, Some("dimension_mismatch"));

        let mut nan = blob(10.0, 4, 3, 3);
        nan.set(1, 1, f64::NAN);
        let r = server.ingest_batch(&nan);
        assert_eq!(r.quarantine_reason, Some("non_finite"));

        let r = server.quarantine_corrupt();
        assert_eq!(r.quarantine_reason, Some("corrupt_chunk"));

        let diag = server.diagnostics();
        assert_eq!(diag.batches, 5);
        assert_eq!(diag.accepted_points, 8);
        assert_eq!(
            diag.quarantined,
            vec![
                (1, "empty_batch"),
                (3, "dimension_mismatch"),
                (4, "non_finite"),
                (5, "corrupt_chunk")
            ]
        );
        // A clean batch after the faults is still accepted.
        assert!(server.ingest_batch(&blob(10.0, 8, 3, 4)).accepted);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bootstrap_promotes_once_window_fills() {
        let dir = tmp_dir("bootstrap");
        let rec = NoopRecorder;
        let params = Proclus::new(2, 2.0).seed(3).restarts(1);
        let config = StreamConfig {
            window: 128,
            min_fit_points: 64,
            reservoir: 32,
            cooldown: 1,
            ..StreamConfig::default()
        };
        let (mut server, _) =
            StreamServer::new(params, config, GateConfig::default(), &dir, &rec).unwrap();
        let mut promoted = false;
        for i in 0..8 {
            // Two well-separated blobs so the fit has real structure.
            let m = if i % 2 == 0 {
                blob(5.0, 16, 3, 100 + i)
            } else {
                blob(60.0, 16, 3, 200 + i)
            };
            let r = server.ingest_batch(&m);
            if let Some(roll) = &r.rollover {
                assert!(
                    matches!(roll.outcome, RolloverOutcome::Promoted { .. }),
                    "{roll:?}"
                );
                promoted = true;
            }
        }
        assert!(promoted, "bootstrap never triggered");
        assert!(server.live().is_some());
        assert_eq!(server.live_generation(), Some(1));
        assert_eq!(server.diagnostics().promotions, 1);
        // The registry on disk agrees.
        let (reg, rep) = ModelRegistry::open(&dir).unwrap();
        assert!(rep.is_clean());
        assert_eq!(reg.current(), Some(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
