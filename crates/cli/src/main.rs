//! `proclus` — command-line interface to the projected-clustering
//! toolkit: dataset generation, PROCLUS / CLIQUE / ORCLUS runs, and
//! clustering evaluation.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

mod args;
mod commands;
mod io;

use args::{ArgError, Args};
use std::error::Error;
use std::io::Write;
use std::process::ExitCode;

const USAGE: &str = "\
proclus — projected clustering toolkit (PROCLUS, SIGMOD 1999)

usage: proclus <command> [options]

commands:
  generate   synthesize a projected-cluster dataset (paper 4.1)
  scenario   generate a declarative workload scenario from a .scn spec
  fit        PROCLUS projected clustering
  clique     CLIQUE subspace clustering baseline
  orclus     generalized (oriented) projected clustering
  stream     continuous ingest with drift-triggered, gated rollover
  serve      resident HTTP server (upload / fit / assign / classify)
  evaluate   confusion matrix / ARI / NMI of two labeled files
  inspect    summarize a dataset file
  inspect-trace  summarize a fit trace written by `fit --trace-out`
  help       show this message (or `proclus <command> --help`)

Dataset files ending in .csv are text; any other extension uses the
compact binary format.

exit codes:
  0   success (including degraded-but-usable fits; see --verbose)
  2   usage error (bad flags or arguments)
  64  invalid algorithm parameters (k, l, tau, ...)
  65  malformed dataset content (bad CSV cell, corrupt binary, bad labels)
  66  input file missing or unreadable
  69  degenerate data / cluster collapse / non-convergence
  74  other I/O error
";

/// Map an error to its documented exit code by walking the concrete
/// error types a run can surface.
fn exit_code_for(e: &(dyn Error + 'static)) -> u8 {
    use proclus_core::{ProclusError, RegistryError, StreamError};
    use proclus_data::DataError;
    fn registry_code(re: &RegistryError) -> u8 {
        match re {
            // Registry I/O is never "missing input": the directory is
            // created on open, so any failure is a real I/O fault.
            RegistryError::Io { .. } => 74,
            RegistryError::Corrupt { .. } => 65,
        }
    }
    if e.downcast_ref::<ArgError>().is_some() {
        return 2;
    }
    if let Some(se) = e.downcast_ref::<StreamError>() {
        return match se {
            StreamError::Config(_) => 64,
            StreamError::Registry(re) => registry_code(re),
        };
    }
    if let Some(re) = e.downcast_ref::<RegistryError>() {
        return registry_code(re);
    }
    if let Some(se) = e.downcast_ref::<proclus_serve::ServeError>() {
        return match se {
            proclus_serve::ServeError::Bind { .. } => 74,
            proclus_serve::ServeError::Registry(re) => registry_code(re),
        };
    }
    if let Some(pe) = e.downcast_ref::<ProclusError>() {
        return match pe {
            ProclusError::InvalidParameters(_)
            | ProclusError::TooFewPoints { .. }
            | ProclusError::DimensionalityTooLow { .. } => 64,
            ProclusError::DegenerateData { .. }
            | ProclusError::ClusterCollapse { .. }
            | ProclusError::NonConvergence { .. } => 69,
        };
    }
    if let Some(de) = e.downcast_ref::<DataError>() {
        return match de {
            DataError::Io { source, .. } => match source.kind() {
                std::io::ErrorKind::NotFound | std::io::ErrorKind::PermissionDenied => 66,
                _ => 74,
            },
            _ => 65,
        };
    }
    if let Some(ce) = e.downcast_ref::<proclus_clique::CliqueError>() {
        return match ce {
            proclus_clique::CliqueError::InvalidTau(_) | proclus_clique::CliqueError::InvalidXi => {
                64
            }
            proclus_clique::CliqueError::EmptyDataset => 69,
        };
    }
    if e.downcast_ref::<proclus_orclus::OrclusError>().is_some() {
        return 64;
    }
    if e.downcast_ref::<proclus_eval::EvalError>().is_some()
        || e.downcast_ref::<io::MalformedDataset>().is_some()
        || e.downcast_ref::<commands::inspect_trace::MalformedTrace>()
            .is_some()
    {
        return 65;
    }
    if e.downcast_ref::<std::io::Error>().is_some() {
        return 74;
    }
    1
}

/// Signature shared by every subcommand entry point.
type Runner = fn(&Args, &mut dyn Write) -> Result<(), Box<dyn std::error::Error>>;

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest: Vec<String> = argv.collect();
    let wants_help = rest.iter().any(|a| a == "--help" || a == "-h");

    let (help, switches, runner): (&str, &[&str], Runner) = match command.as_str() {
        "generate" => (
            commands::generate::HELP,
            &["no-labels"],
            commands::generate::run,
        ),
        "scenario" => (
            commands::scenario::HELP,
            &["print-canonical"],
            commands::scenario::run,
        ),
        "fit" => (
            commands::fit::HELP,
            &[
                "paper-literal",
                "verbose",
                "no-round-cache",
                "no-index",
                "fast-math",
            ],
            commands::fit::run,
        ),
        "clique" => (
            commands::clique::HELP,
            &["descriptions", "mdl"],
            commands::clique::run,
        ),
        "orclus" => (commands::orclus::HELP, &[], commands::orclus::run),
        "stream" => (
            commands::stream::HELP,
            &["verbose", "no-round-cache", "no-index"],
            commands::stream::run,
        ),
        "serve" => (commands::serve::HELP, &[], commands::serve::run),
        "evaluate" => (commands::evaluate::HELP, &[], commands::evaluate::run),
        "inspect" => (commands::inspect::HELP, &[], commands::inspect::run),
        "inspect-trace" => (
            commands::inspect_trace::HELP,
            &[],
            commands::inspect_trace::run,
        ),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown command {other:?}\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if wants_help {
        print!("{help}");
        return ExitCode::SUCCESS;
    }
    let parsed = match Args::parse(rest, switches) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{help}");
            return ExitCode::from(2);
        }
    };
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let result = runner(&parsed, &mut out).and_then(|()| Ok(out.flush()?));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        // A closed pipe (e.g. `proclus ... | head`) is not an error.
        Err(e)
            if e.downcast_ref::<std::io::Error>()
                .is_some_and(|io| io.kind() == std::io::ErrorKind::BrokenPipe) =>
        {
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(exit_code_for(e.as_ref()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proclus_core::ProclusError;
    use proclus_data::DataError;

    fn code(e: impl Error + 'static) -> u8 {
        exit_code_for(&e)
    }

    #[test]
    fn exit_codes_by_error_class() {
        assert_eq!(code(ArgError("bad flag".into())), 2);
        assert_eq!(code(ProclusError::InvalidParameters("k".into())), 64);
        assert_eq!(code(ProclusError::TooFewPoints { needed: 5, got: 1 }), 64);
        assert_eq!(
            code(ProclusError::DegenerateData {
                reason: "nan".into()
            }),
            69
        );
        assert_eq!(code(ProclusError::ClusterCollapse { rounds: 3 }), 69);
        assert_eq!(code(ProclusError::NonConvergence { restarts: 5 }), 69);
        assert_eq!(
            code(DataError::Csv {
                path: "x.csv".into(),
                line: 2,
                column: Some(1),
                token: None,
                reason: "bad".into(),
            }),
            65
        );
        assert_eq!(
            code(DataError::io(
                std::path::Path::new("gone.csv"),
                std::io::Error::from(std::io::ErrorKind::NotFound),
            )),
            66
        );
        assert_eq!(
            code(DataError::io(
                std::path::Path::new("x.csv"),
                std::io::Error::other("disk on fire"),
            )),
            74
        );
        assert_eq!(code(proclus_clique::CliqueError::InvalidTau(0.0)), 64);
        assert_eq!(code(proclus_clique::CliqueError::EmptyDataset), 69);
        assert_eq!(
            code(proclus_eval::EvalError::LengthMismatch {
                output: 1,
                truth: 2
            }),
            65
        );
        assert_eq!(code(io::MalformedDataset("bad label".into())), 65);
        assert_eq!(
            code(commands::inspect_trace::MalformedTrace("bad line".into())),
            65
        );
        assert_eq!(code(std::io::Error::other("hup")), 74);
        assert_eq!(code(std::fmt::Error), 1);
    }

    #[test]
    fn stream_and_registry_errors_map_to_documented_codes() {
        use proclus_core::{RegistryError, StreamError};
        assert_eq!(
            code(StreamError::Config(ProclusError::InvalidParameters(
                "patience".into()
            ))),
            64
        );
        assert_eq!(
            code(StreamError::Registry(RegistryError::Io {
                path: "reg".into(),
                source: std::io::Error::other("disk"),
            })),
            74
        );
        assert_eq!(
            code(RegistryError::Corrupt {
                path: "gen-000001.prcm".into(),
                offset: 12,
                reason: "checksum mismatch".into(),
            }),
            65
        );
    }
}
