//! `proclus` — command-line interface to the projected-clustering
//! toolkit: dataset generation, PROCLUS / CLIQUE / ORCLUS runs, and
//! clustering evaluation.

mod args;
mod commands;
mod io;

use args::Args;
use std::io::Write;
use std::process::ExitCode;

const USAGE: &str = "\
proclus — projected clustering toolkit (PROCLUS, SIGMOD 1999)

usage: proclus <command> [options]

commands:
  generate   synthesize a projected-cluster dataset (paper 4.1)
  fit        PROCLUS projected clustering
  clique     CLIQUE subspace clustering baseline
  orclus     generalized (oriented) projected clustering
  evaluate   confusion matrix / ARI / NMI of two labeled files
  inspect    summarize a dataset file
  help       show this message (or `proclus <command> --help`)

Dataset files ending in .csv are text; any other extension uses the
compact binary format.
";

/// Signature shared by every subcommand entry point.
type Runner = fn(&Args, &mut dyn Write) -> Result<(), Box<dyn std::error::Error>>;

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest: Vec<String> = argv.collect();
    let wants_help = rest.iter().any(|a| a == "--help" || a == "-h");

    let (help, switches, runner): (&str, &[&str], Runner) = match command.as_str() {
        "generate" => (
            commands::generate::HELP,
            &["no-labels"],
            commands::generate::run,
        ),
        "fit" => (commands::fit::HELP, &["paper-literal"], commands::fit::run),
        "clique" => (
            commands::clique::HELP,
            &["descriptions", "mdl"],
            commands::clique::run,
        ),
        "orclus" => (commands::orclus::HELP, &[], commands::orclus::run),
        "evaluate" => (commands::evaluate::HELP, &[], commands::evaluate::run),
        "inspect" => (commands::inspect::HELP, &[], commands::inspect::run),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown command {other:?}\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if wants_help {
        print!("{help}");
        return ExitCode::SUCCESS;
    }
    let parsed = match Args::parse(rest, switches) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{help}");
            return ExitCode::from(2);
        }
    };
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let result = runner(&parsed, &mut out).and_then(|()| Ok(out.flush()?));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        // A closed pipe (e.g. `proclus ... | head`) is not an error.
        Err(e)
            if e.downcast_ref::<std::io::Error>()
                .is_some_and(|io| io.kind() == std::io::ErrorKind::BrokenPipe) =>
        {
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
