//! Format-dispatching dataset I/O for the CLI: `.csv` files use the
//! textual format, anything else the compact binary format.

use proclus_data::io as csvio;
use proclus_data::{binio, Label};
use proclus_math::Matrix;
use std::io;
use std::path::Path;

/// Is this path a CSV file (by extension, case-insensitive)?
pub fn is_csv(path: &Path) -> bool {
    path.extension()
        .and_then(|e| e.to_str())
        .is_some_and(|e| e.eq_ignore_ascii_case("csv"))
}

/// Read points and optional labels, dispatching on the extension.
pub fn read_dataset(path: &Path) -> io::Result<(Matrix, Option<Vec<Label>>)> {
    if is_csv(path) {
        csvio::read_csv(path)
    } else {
        binio::read_binary(path)
    }
}

/// Write points and optional labels, dispatching on the extension.
pub fn write_dataset(path: &Path, points: &Matrix, labels: Option<&[Label]>) -> io::Result<()> {
    if is_csv(path) {
        csvio::write_csv(path, points, labels)
    } else {
        binio::write_binary(path, points, labels)
    }
}

/// Convert a clustering assignment (`None` = outlier) into labels.
pub fn assignment_labels(assignment: &[Option<usize>]) -> Vec<Label> {
    assignment
        .iter()
        .map(|a| match a {
            Some(i) => Label::Cluster(*i),
            None => Label::Outlier,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("proclus-cli-io-{name}-{}", std::process::id()))
    }

    #[test]
    fn extension_dispatch() {
        assert!(is_csv(Path::new("a.csv")));
        assert!(is_csv(Path::new("a.CSV")));
        assert!(!is_csv(Path::new("a.prcl")));
        assert!(!is_csv(Path::new("a")));
    }

    #[test]
    fn roundtrip_both_formats() {
        let m = Matrix::from_rows(&[[1.0, 2.0], [3.0, 4.0]], 2);
        let labels = vec![Label::Cluster(1), Label::Outlier];
        for name in ["x.csv", "x.prcl"] {
            let path = tmp(name);
            write_dataset(&path, &m, Some(&labels)).unwrap();
            let (m2, l2) = read_dataset(&path).unwrap();
            std::fs::remove_file(&path).ok();
            assert_eq!(m, m2, "{name}");
            assert_eq!(l2.as_deref(), Some(labels.as_slice()), "{name}");
        }
    }

    #[test]
    fn assignment_labels_map() {
        let labels = assignment_labels(&[Some(2), None, Some(0)]);
        assert_eq!(
            labels,
            vec![Label::Cluster(2), Label::Outlier, Label::Cluster(0)]
        );
    }
}
