//! Format-dispatching dataset I/O for the CLI: `.csv` files use the
//! textual format, anything else the compact binary format.

use proclus_data::io as csvio;
use proclus_data::{binio, DataError, Label};
use proclus_math::Matrix;
use std::path::Path;

/// Is this path a CSV file (by extension, case-insensitive)?
pub fn is_csv(path: &Path) -> bool {
    path.extension()
        .and_then(|e| e.to_str())
        .is_some_and(|e| e.eq_ignore_ascii_case("csv"))
}

/// Read points and optional labels, dispatching on the extension.
pub fn read_dataset(path: &Path) -> Result<(Matrix, Option<Vec<Label>>), DataError> {
    if is_csv(path) {
        csvio::read_csv(path)
    } else {
        binio::read_binary(path)
    }
}

/// Write points and optional labels, dispatching on the extension.
pub fn write_dataset(
    path: &Path,
    points: &Matrix,
    labels: Option<&[Label]>,
) -> Result<(), DataError> {
    if is_csv(path) {
        csvio::write_csv(path, points, labels)
    } else {
        binio::write_binary(path, points, labels)
    }
}

/// A dataset whose bytes parsed but whose *content* is semantically
/// unusable — e.g. a cluster label id far beyond the row count, which
/// would otherwise drive unbounded histogram allocations.
#[derive(Debug)]
pub struct MalformedDataset(pub String);

impl std::fmt::Display for MalformedDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed dataset: {}", self.0)
    }
}

impl std::error::Error for MalformedDataset {}

/// Reject label columns whose cluster ids are not `< rows`: any honest
/// labeling uses ids bounded by the number of points, and an id like
/// `10^18` in a hostile file must not size an allocation.
pub fn validate_label_ids(path: &Path, labels: &[Label]) -> Result<(), MalformedDataset> {
    let rows = labels.len();
    if let Some(bad) = labels
        .iter()
        .filter_map(|l| l.cluster())
        .find(|&id| id >= rows)
    {
        return Err(MalformedDataset(format!(
            "{}: cluster label id {bad} is out of range for {rows} rows",
            path.display()
        )));
    }
    Ok(())
}

/// Convert a clustering assignment (`None` = outlier) into labels.
pub fn assignment_labels(assignment: &[Option<usize>]) -> Vec<Label> {
    assignment
        .iter()
        .map(|a| match a {
            Some(i) => Label::Cluster(*i),
            None => Label::Outlier,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("proclus-cli-io-{name}-{}", std::process::id()))
    }

    #[test]
    fn extension_dispatch() {
        assert!(is_csv(Path::new("a.csv")));
        assert!(is_csv(Path::new("a.CSV")));
        assert!(!is_csv(Path::new("a.prcl")));
        assert!(!is_csv(Path::new("a")));
    }

    #[test]
    fn roundtrip_both_formats() {
        let m = Matrix::from_rows(&[[1.0, 2.0], [3.0, 4.0]], 2);
        let labels = vec![Label::Cluster(1), Label::Outlier];
        for name in ["x.csv", "x.prcl"] {
            let path = tmp(name);
            write_dataset(&path, &m, Some(&labels)).unwrap();
            let (m2, l2) = read_dataset(&path).unwrap();
            std::fs::remove_file(&path).ok();
            assert_eq!(m, m2, "{name}");
            assert_eq!(l2.as_deref(), Some(labels.as_slice()), "{name}");
        }
    }

    #[test]
    fn label_id_validation() {
        let p = Path::new("x.csv");
        let ok = vec![Label::Cluster(1), Label::Outlier, Label::Cluster(0)];
        assert!(validate_label_ids(p, &ok).is_ok());
        let bad = vec![Label::Cluster(3), Label::Outlier];
        let err = validate_label_ids(p, &bad).unwrap_err();
        assert!(err.to_string().contains("label id 3"));
    }

    #[test]
    fn assignment_labels_map() {
        let labels = assignment_labels(&[Some(2), None, Some(0)]);
        assert_eq!(
            labels,
            vec![Label::Cluster(2), Label::Outlier, Label::Cluster(0)]
        );
    }
}
