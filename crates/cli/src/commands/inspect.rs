//! `proclus inspect` — summarize a dataset file: shape, per-dimension
//! statistics, label histogram.

use crate::args::Args;
use crate::io::{read_dataset, validate_label_ids};
use proclus_data::Label;
use proclus_math::stats::Welford;
use std::error::Error;
use std::io::Write;
use std::path::PathBuf;

pub const HELP: &str = "\
proclus inspect — summarize a dataset file

  --input <path>   dataset file (.csv or binary) (required)
  --dims <usize>   print at most this many per-dimension rows [default 25]
";

/// Run the command.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let input = PathBuf::from(args.require("input")?);
    let max_dims: usize = args.get_parsed("dims", 25usize)?;
    args.reject_unknown()?;

    let (points, labels) = read_dataset(&input)?;
    writeln!(
        out,
        "{}: {} points x {} dimensions, labels: {}",
        input.display(),
        points.rows(),
        points.cols(),
        if labels.is_some() { "yes" } else { "no" }
    )?;

    // Per-dimension stats in one pass.
    let d = points.cols();
    let mut acc = vec![Welford::new(); d];
    let mut lo = vec![f64::INFINITY; d];
    let mut hi = vec![f64::NEG_INFINITY; d];
    for row in points.iter_rows() {
        for (j, &v) in row.iter().enumerate() {
            acc[j].push(v);
            if v < lo[j] {
                lo[j] = v;
            }
            if v > hi[j] {
                hi[j] = v;
            }
        }
    }
    writeln!(
        out,
        "{:>5} {:>12} {:>12} {:>12} {:>12}",
        "dim", "min", "max", "mean", "std"
    )?;
    for j in 0..d.min(max_dims) {
        writeln!(
            out,
            "{j:>5} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
            lo[j],
            hi[j],
            acc[j].mean(),
            acc[j].sample_std()
        )?;
    }
    if d > max_dims {
        writeln!(out, "  ... and {} more dimensions", d - max_dims)?;
    }

    if let Some(labels) = labels {
        // A hostile label id must not size the histogram allocation.
        validate_label_ids(&input, &labels)?;
        let k = labels
            .iter()
            .filter_map(|l| l.cluster())
            .max()
            .map_or(0, |m| m + 1);
        let mut counts = vec![0usize; k];
        let mut outliers = 0usize;
        for l in &labels {
            match l {
                Label::Cluster(i) => counts[*i] += 1,
                Label::Outlier => outliers += 1,
            }
        }
        writeln!(out, "label histogram:")?;
        for (i, c) in counts.iter().enumerate() {
            writeln!(out, "  cluster {i}: {c}")?;
        }
        writeln!(out, "  outliers: {outliers}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proclus_data::SyntheticSpec;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("proclus-cli-insp-{name}-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn summarizes_labeled_file() {
        let f = tmp("a.csv");
        let data = SyntheticSpec::new(300, 5, 2, 2.0).seed(1).generate();
        crate::io::write_dataset(f.as_ref(), &data.points, Some(&data.labels)).unwrap();
        let args = Args::parse(toks(&format!("--input {f}")), &[]).unwrap();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        std::fs::remove_file(&f).ok();
        assert!(text.contains("300 points x 5 dimensions"));
        assert!(text.contains("label histogram"));
        assert!(text.contains("outliers: 15")); // 5% of 300
    }

    #[test]
    fn dims_cap_truncates_output() {
        let f = tmp("b.csv");
        let data = SyntheticSpec::new(100, 8, 2, 2.0).seed(1).generate();
        crate::io::write_dataset(f.as_ref(), &data.points, None).unwrap();
        let args = Args::parse(toks(&format!("--input {f} --dims 3")), &[]).unwrap();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        std::fs::remove_file(&f).ok();
        assert!(text.contains("and 5 more dimensions"));
    }
}
