//! `proclus inspect-trace` — summarize a trace directory written by
//! `proclus fit --trace-out`: manifest header, per-phase time
//! breakdown, convergence curve, and swap history.

use crate::args::Args;
use proclus_obs::json;
use proclus_obs::{render_manifest, Event, TraceSummary, EVENTS_FILE, MANIFEST_FILE};
use std::error::Error;
use std::io::Write;
use std::path::PathBuf;

pub const HELP: &str = "\
proclus inspect-trace — summarize a fit trace (run.json + events.jsonl)

  --input <dir>    trace directory written by `proclus fit --trace-out`
                   (required)
  --events <path>  read this events.jsonl instead of <dir>/events.jsonl
";

/// A malformed trace file: carries the offending path and line.
#[derive(Debug)]
pub struct MalformedTrace(pub String);

impl std::fmt::Display for MalformedTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for MalformedTrace {}

fn read_to_string(path: &PathBuf) -> Result<String, Box<dyn Error>> {
    std::fs::read_to_string(path).map_err(|e| -> Box<dyn Error> {
        Box::new(std::io::Error::new(
            e.kind(),
            format!("{}: {e}", path.display()),
        ))
    })
}

/// Derived round-cache effectiveness: hits / (hits + recomputes) per
/// cache layer, from the `cache.*` manifest counters. `None` when the
/// trace has no cache counters (cache disabled, or a pre-cache trace).
fn cache_summary(manifest: &json::Json) -> Option<String> {
    let counter = |name: &str| {
        manifest
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(json::Json::as_usize)
    };
    let layer = |label: &str, hits: &str, recomputes: &str| -> Option<String> {
        let h = counter(hits)?;
        let r = counter(recomputes)?;
        let total = h + r;
        // A 0-lookup layer has no meaningful rate: "0.0%" would read
        // as "nothing hit" when in fact nothing was ever asked.
        if total == 0 {
            return Some(format!("{label} n/a (0 lookups)"));
        }
        let pct = h as f64 * 100.0 / total as f64;
        Some(format!("{label} {h}/{total} hits ({pct:.1}%)"))
    };
    let fused = layer(
        "fused",
        "cache.fused_slot_hits",
        "cache.fused_slot_recomputes",
    )?;
    let cols = layer("columns", "cache.column_hits", "cache.column_recomputes")?;
    let rows = layer(
        "cluster rows",
        "cache.cluster_row_hits",
        "cache.cluster_row_recomputes",
    )?;
    Some(format!("round cache: {fused}, {cols}, {rows}"))
}

/// Derived neighbor-index effectiveness: pruned / (pruned + verified)
/// per query family, from the `index.*` manifest counters. `None` when
/// the trace has no index counters (index disabled, or a pre-index
/// trace).
fn index_summary(manifest: &json::Json) -> Option<String> {
    let counter = |name: &str| {
        manifest
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(json::Json::as_usize)
    };
    let rate = |pruned: usize, verified: usize| -> String {
        let total = pruned + verified;
        // No queries of this family ran (e.g. a fit that converged in
        // 0 rounds): a rate is undefined, not 0%.
        if total == 0 {
            return "n/a (0 queries)".to_string();
        }
        let pct = pruned as f64 * 100.0 / total as f64;
        format!("{pruned}/{total} pruned ({pct:.1}%)")
    };
    let sketch = counter("index.range_sketch_pruned")?;
    let triangle = counter("index.range_triangle_pruned")?;
    let prefix = counter("index.range_prefix_pruned").unwrap_or(0);
    let range_verified = counter("index.range_verified")?;
    let nearest_pruned = counter("index.nearest_pruned")?;
    let nearest_verified = counter("index.nearest_verified")?;
    Some(format!(
        "neighbor index: range {} (sketch {sketch}, triangle {triangle}, prefix {prefix}), nearest {}",
        rate(sketch + triangle + prefix, range_verified),
        rate(nearest_pruned, nearest_verified),
    ))
}

/// Derived columnar-layout coverage from the `layout.*` manifest
/// counters: how many block dispatches ran on a dimension-major tile
/// vs the row-major fallback. `None` when the trace has no layout
/// counters (layout disabled, or a pre-layout trace).
fn layout_summary(manifest: &json::Json) -> Option<String> {
    let counter = |name: &str| {
        manifest
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(json::Json::as_usize)
    };
    let columnar = counter("layout.columnar_blocks")?;
    let rowmajor = counter("layout.rowmajor_blocks")?;
    let total = columnar + rowmajor;
    if total == 0 {
        return Some("columnar layout: n/a (0 blocks dispatched)".to_string());
    }
    let pct = columnar as f64 * 100.0 / total as f64;
    Some(format!(
        "columnar layout: {columnar}/{total} blocks columnar ({pct:.1}%)"
    ))
}

/// Derived `f32` fast-path effectiveness from the `fastmath.*`
/// manifest counters: pairs excluded by the conservative screen vs
/// pairs verified exactly. `None` when the trace has no fast-math
/// counters (the default — the fast path is opt-in).
fn fastmath_summary(manifest: &json::Json) -> Option<String> {
    let counter = |name: &str| {
        manifest
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(json::Json::as_usize)
    };
    let screened = counter("fastmath.screened")?;
    let excluded = counter("fastmath.excluded").unwrap_or(0);
    let verified = counter("fastmath.verified").unwrap_or(0);
    if screened == 0 {
        return Some("fast math: n/a (0 pairs screened)".to_string());
    }
    let pct = excluded as f64 * 100.0 / screened as f64;
    Some(format!(
        "fast math: {excluded}/{screened} pairs excluded ({pct:.1}%), {verified} verified in f64"
    ))
}

/// Derived serving health from a `proclus serve` manifest's `serve.*`
/// counters: request volume, error split, queue pressure, and job
/// outcomes. `None` for traces that never served traffic.
fn serve_summary(manifest: &json::Json) -> Option<String> {
    let counter = |name: &str| {
        manifest
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(json::Json::as_usize)
    };
    let requests = counter("serve.requests")?;
    let c4xx = counter("serve.status_4xx").unwrap_or(0);
    let c5xx = counter("serve.status_5xx").unwrap_or(0);
    let queue_full = counter("serve.queue_full").unwrap_or(0);
    let done = counter("serve.jobs_done").unwrap_or(0);
    let failed = counter("serve.jobs_failed").unwrap_or(0);
    let protocol = counter("serve.protocol_errors").unwrap_or(0);
    Some(format!(
        "serve health: {requests} requests ({c4xx} 4xx, {c5xx} 5xx, \
         {protocol} protocol faults), {queue_full} backpressured, \
         jobs {done} done / {failed} failed"
    ))
}

/// Derived stream health from a `proclus stream` manifest's result
/// object: ingest volume, quarantine count, and rollover tallies.
/// `None` for non-streaming traces (e.g. a plain `fit`).
fn stream_summary(manifest: &json::Json) -> Option<String> {
    let result = manifest.get("result")?;
    let num = |name: &str| result.get(name).and_then(json::Json::as_usize);
    let batches = num("batches")?;
    let quarantined = num("quarantined")?;
    let promotions = num("promotions")?;
    let rollbacks = num("rollbacks")?;
    let serving = result
        .get("serving_generation")
        .and_then(json::Json::as_usize)
        .map_or_else(|| "none".to_string(), |g| format!("generation {g}"));
    Some(format!(
        "stream health: {batches} batches ({quarantined} quarantined), \
         {promotions} promoted / {rollbacks} rolled back, serving {serving}"
    ))
}

/// Run the command.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let dir = PathBuf::from(args.require("input")?);
    let events_path = args
        .get("events")
        .map_or_else(|| dir.join(EVENTS_FILE), PathBuf::from);
    args.reject_unknown()?;

    // Manifest: measurement side (timings, counters, gauges).
    let manifest_path = dir.join(MANIFEST_FILE);
    let manifest_text = read_to_string(&manifest_path)?;
    let manifest = json::parse(&manifest_text)
        .map_err(|e| MalformedTrace(format!("{}: {e}", manifest_path.display())))?;
    let rendered = render_manifest(&manifest)
        .map_err(|e| MalformedTrace(format!("{}: {e}", manifest_path.display())))?;
    write!(out, "{rendered}")?;
    if let Some(line) = cache_summary(&manifest) {
        writeln!(out, "{line}")?;
    }
    if let Some(line) = index_summary(&manifest) {
        writeln!(out, "{line}")?;
    }
    if let Some(line) = layout_summary(&manifest) {
        writeln!(out, "{line}")?;
    }
    if let Some(line) = fastmath_summary(&manifest) {
        writeln!(out, "{line}")?;
    }
    if let Some(line) = stream_summary(&manifest) {
        writeln!(out, "{line}")?;
    }
    if let Some(line) = serve_summary(&manifest) {
        writeln!(out, "{line}")?;
    }
    if let Some(json::Json::Obj(members)) = manifest.get("params") {
        let mut line = String::from("params:");
        for (key, value) in members {
            line.push_str(&format!(" {key}={value}"));
        }
        writeln!(out, "{line}")?;
    }

    // Event stream: deterministic side (convergence, swaps, refine).
    let stream = read_to_string(&events_path)?;
    let mut events = Vec::new();
    for (i, line) in stream.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = Event::parse_line(line).map_err(|e| {
            MalformedTrace(format!("{} line {}: {e}", events_path.display(), i + 1))
        })?;
        events.push(ev);
    }
    let summary = TraceSummary::from_events(&events, 0);
    write!(out, "{}", summary.render())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proclus_core::Proclus;
    use proclus_data::SyntheticSpec;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("proclus-cli-trc-{name}-{}", std::process::id()))
    }

    /// End to end: fit with a JsonlRecorder, then inspect the directory.
    #[test]
    fn summarizes_a_real_trace() {
        let dir = tmp("e2e");
        let data = SyntheticSpec::new(300, 6, 2, 3.0).seed(9).generate();
        let rec = proclus_obs::JsonlRecorder::create(&dir).unwrap();
        let model = Proclus::new(2, 3.0)
            .seed(1)
            .restarts(2)
            .fit_traced(&data.points, &rec)
            .unwrap();
        rec.finish(
            json::Json::Obj(vec![("k".into(), json::Json::Num(2.0))]),
            json::Json::Obj(vec![(
                "objective".into(),
                json::Json::Num(model.objective()),
            )]),
        )
        .unwrap();

        let args = Args::parse(toks(&format!("--input {}", dir.display())), &[]).unwrap();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert!(text.contains("manifest: schema_version=1"), "{text}");
        assert!(text.contains("phase breakdown:"), "{text}");
        assert!(text.contains("algorithm: proclus"), "{text}");
        assert!(text.contains("convergence"), "{text}");
        assert!(text.contains("params: k=2"), "{text}");
        // Cache counters surface both raw and as derived hit rates.
        assert!(text.contains("cache.fused_slot_hits"), "{text}");
        assert!(text.contains("round cache: fused "), "{text}");
        assert!(text.contains("cluster rows "), "{text}");
        // Index counters surface both raw and as derived prune rates.
        assert!(text.contains("index.range_verified"), "{text}");
        assert!(text.contains("neighbor index: range "), "{text}");
        assert!(text.contains("pruned ("), "{text}");
    }

    /// A trace from an unindexed fit renders without the derived index
    /// line instead of failing or printing zeros.
    #[test]
    fn unindexed_trace_omits_the_index_summary() {
        let dir = tmp("noindex");
        let data = SyntheticSpec::new(200, 5, 2, 2.0).seed(6).generate();
        let rec = proclus_obs::JsonlRecorder::create(&dir).unwrap();
        Proclus::new(2, 2.0)
            .seed(1)
            .restarts(1)
            .neighbor_index(false)
            .fit_traced(&data.points, &rec)
            .unwrap();
        rec.finish(json::Json::Obj(Vec::new()), json::Json::Obj(Vec::new()))
            .unwrap();
        let args = Args::parse(toks(&format!("--input {}", dir.display())), &[]).unwrap();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let text = String::from_utf8(buf).unwrap();
        assert!(!text.contains("neighbor index:"), "{text}");
        assert!(!text.contains("index.range_verified"), "{text}");
    }

    /// A trace without cache counters (cache disabled) renders without
    /// the derived cache line instead of failing or printing zeros.
    #[test]
    fn uncached_trace_omits_the_cache_summary() {
        let dir = tmp("nocache");
        let data = SyntheticSpec::new(200, 5, 2, 2.0).seed(6).generate();
        let rec = proclus_obs::JsonlRecorder::create(&dir).unwrap();
        Proclus::new(2, 2.0)
            .seed(1)
            .restarts(1)
            .round_cache(false)
            .fit_traced(&data.points, &rec)
            .unwrap();
        rec.finish(json::Json::Obj(Vec::new()), json::Json::Obj(Vec::new()))
            .unwrap();
        let args = Args::parse(toks(&format!("--input {}", dir.display())), &[]).unwrap();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let text = String::from_utf8(buf).unwrap();
        assert!(!text.contains("round cache:"), "{text}");
        assert!(!text.contains("cache.fused_slot_hits"), "{text}");
    }

    /// Counters that exist but total zero (a fit that never exercised
    /// a layer) must render as `n/a`, never as a misleading `0.0%`.
    #[test]
    fn zero_total_counters_render_as_not_applicable() {
        let dir = tmp("zero-counters");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(MANIFEST_FILE),
            concat!(
                "{\"schema_version\":1,\"events\":0,\"phases\":{},\"counters\":{",
                "\"cache.fused_slot_hits\":0,\"cache.fused_slot_recomputes\":0,",
                "\"cache.column_hits\":0,\"cache.column_recomputes\":0,",
                "\"cache.cluster_row_hits\":0,\"cache.cluster_row_recomputes\":0,",
                "\"index.range_sketch_pruned\":0,\"index.range_triangle_pruned\":0,",
                "\"index.range_prefix_pruned\":0,\"index.range_verified\":0,",
                "\"index.nearest_pruned\":0,\"index.nearest_verified\":0,",
                "\"layout.columnar_blocks\":0,\"layout.rowmajor_blocks\":0,",
                "\"fastmath.screened\":0,\"fastmath.excluded\":0,",
                "\"fastmath.verified\":0}}"
            ),
        )
        .unwrap();
        std::fs::write(dir.join(EVENTS_FILE), "").unwrap();
        let args = Args::parse(toks(&format!("--input {}", dir.display())), &[]).unwrap();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("fused n/a (0 lookups)"), "{text}");
        assert!(text.contains("range n/a (0 queries)"), "{text}");
        assert!(text.contains("nearest n/a (0 queries)"), "{text}");
        assert!(text.contains("columnar layout: n/a"), "{text}");
        assert!(text.contains("fast math: n/a"), "{text}");
        assert!(!text.contains("0.0%"), "zero-total rate leaked: {text}");
        assert!(!text.contains("NaN"), "{text}");
    }

    /// A real k=1 fit (no swaps possible, rounds end immediately) must
    /// inspect cleanly — its zero-activity layers say `n/a`.
    #[test]
    fn k1_trace_inspects_without_bogus_rates() {
        let dir = tmp("k1");
        let data = SyntheticSpec::new(120, 4, 1, 2.0).seed(5).generate();
        let rec = proclus_obs::JsonlRecorder::create(&dir).unwrap();
        Proclus::new(1, 2.0)
            .seed(1)
            .restarts(1)
            .fit_traced(&data.points, &rec)
            .unwrap();
        rec.finish(json::Json::Obj(Vec::new()), json::Json::Obj(Vec::new()))
            .unwrap();
        let args = Args::parse(toks(&format!("--input {}", dir.display())), &[]).unwrap();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("columnar layout:"), "{text}");
        assert!(!text.contains("NaN"), "{text}");
        // A genuinely-zero rate over a nonzero total (e.g. "0/1200
        // pruned (0.0%)") is meaningful and allowed; what must never
        // appear is a rate over a zero total.
        assert!(!text.contains("0/0 "), "zero-total rate leaked: {text}");
    }

    /// A trace that begins with a `scenario_meta` event (written by
    /// `proclus scenario --trace-out`) leads its summary with a
    /// `scenario:` identity line.
    #[test]
    fn scenario_trace_leads_with_the_scenario_line() {
        let dir = tmp("scn");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(MANIFEST_FILE),
            "{\"schema_version\":1,\"events\":1,\"phases\":{}}",
        )
        .unwrap();
        std::fs::write(
            dir.join(EVENTS_FILE),
            "{\"type\":\"scenario_meta\",\"name\":\"zipf-sizes\",\"seed\":17,\"epochs\":4}\n",
        )
        .unwrap();
        let args = Args::parse(toks(&format!("--input {}", dir.display())), &[]).unwrap();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains("scenario: zipf-sizes  seed=17 epochs=4"),
            "{text}"
        );
    }

    #[test]
    fn missing_directory_errors() {
        let args = Args::parse(toks("--input /nonexistent/trace-dir"), &[]).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
    }

    #[test]
    fn corrupt_event_line_reports_location() {
        let dir = tmp("bad");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(MANIFEST_FILE),
            "{\"schema_version\":1,\"events\":1,\"phases\":{}}",
        )
        .unwrap();
        std::fs::write(dir.join(EVENTS_FILE), "{\"kind\":\"not-a-kind\"}\n").unwrap();
        let args = Args::parse(toks(&format!("--input {}", dir.display())), &[]).unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        assert!(err.to_string().contains("line 1"), "{err}");
    }
}
