//! `proclus stream` — continuous ingest with drift-triggered, gated
//! model rollover against a crash-safe registry.
//!
//! Input datasets are framed into `PRCK` chunks and then *decoded*
//! through the same fault-tolerant reader a network tail would use, so
//! corrupt frames exercise the real quarantine path end to end.

use crate::args::{ArgError, Args};
use crate::commands::fit::parse_metric;
use crate::io::read_dataset;
use proclus_core::{
    GateConfig, Proclus, RecoveryReport, StreamConfig, StreamDiagnostics, StreamServer,
};
use proclus_data::ChunkReader;
use proclus_obs::json::Json;
use proclus_obs::{Fanout, JsonlRecorder, Recorder, RingRecorder, TraceSummary};
use std::error::Error;
use std::io::Write;
use std::path::PathBuf;

pub const HELP: &str = "\
proclus stream — continuous ingest, drift detection, gated rollover

  --input <paths>   comma-separated dataset files, ingested in order
                    (.csv / binary datasets are framed into chunked
                    batches; .chunks files are raw PRCK frame streams)
                    (required)
  --registry <dir>  model registry directory (created if missing; a
                    recovery scan quarantines partial/corrupt entries)
                    (required)
  --k <usize>       number of clusters (required)
  --l <f64>         average dimensions per cluster (required)

stream knobs:
  --batch <n>           rows per ingested batch [default 256]
  --window <n>          sliding-window capacity [default 2048]
  --min-fit <n>         points required before any fit [default 512]
  --reservoir <n>       reference-reservoir capacity [default 256]
  --projections <n>     drift-detector projections [default 8]
  --drift-threshold <f> standardized mean-shift trigger level [default 0.6]
  --patience <n>        consecutive drifted batches to trigger [default 2]
  --cooldown <n>        batches between rollover attempts [default 2]
  --stream-seed <u64>   sampling/projection seed [default 0]

promotion gates:
  --min-silhouette <f>      shadow silhouette floor [default 0.05]
  --max-cost-ratio <f>      canary cost-ratio ceiling [default 1.25]
  --max-outlier-fraction <f> shadow outlier ceiling [default 0.5]
  --canary-fraction <f>     window share served as canary [default 0.25]
  --min-canary-ari <f>      live-agreement floor [default 0]
  --min-coverage <f>        live coverage for ARI enforcement [default 0.25]

fit knobs (candidate models):
  --seed <u64>      fit PRNG seed [default 0]
  --restarts <n>    independent hill climbs [default 5]
  --threads <n>     worker threads [default 1]
  --metric <name>   manhattan | euclidean | chebyshev [default manhattan]
  --no-round-cache  disable the cross-round cache (bit-identical)
  --no-index        disable the pruning index (bit-identical)

output:
  --verbose         print the recorded trace summary
  --trace-out <dir> stream events.jsonl + run.json into this directory
";

fn params_json(params: &Proclus, config: &StreamConfig, metric: &str) -> Json {
    Json::Obj(vec![
        ("algorithm".into(), Json::Str("proclus-stream".into())),
        ("k".into(), Json::Num(params.k as f64)),
        ("l".into(), Json::Num(params.l)),
        ("seed".into(), Json::Num(params.rng_seed as f64)),
        ("stream_seed".into(), Json::Num(config.seed as f64)),
        ("window".into(), Json::Num(config.window as f64)),
        (
            "min_fit_points".into(),
            Json::Num(config.min_fit_points as f64),
        ),
        ("reservoir".into(), Json::Num(config.reservoir as f64)),
        ("projections".into(), Json::Num(config.projections as f64)),
        ("drift_threshold".into(), Json::Num(config.drift_threshold)),
        ("patience".into(), Json::Num(config.patience as f64)),
        ("cooldown".into(), Json::Num(config.cooldown as f64)),
        ("threads".into(), Json::Num(params.threads as f64)),
        ("metric".into(), Json::Str(metric.into())),
    ])
}

fn result_json(diag: &StreamDiagnostics, generation: Option<u64>) -> Json {
    Json::Obj(vec![
        ("batches".into(), Json::Num(diag.batches as f64)),
        (
            "accepted_points".into(),
            Json::Num(diag.accepted_points as f64),
        ),
        (
            "quarantined".into(),
            Json::Num(diag.quarantined.len() as f64),
        ),
        (
            "drift_detections".into(),
            Json::Num(diag.drift_detections as f64),
        ),
        ("promotions".into(), Json::Num(diag.promotions as f64)),
        ("rollbacks".into(), Json::Num(diag.rollbacks as f64)),
        (
            "serving_generation".into(),
            match generation {
                Some(g) => Json::Num(g as f64),
                None => Json::Null,
            },
        ),
    ])
}

pub(crate) fn describe_recovery(
    out: &mut dyn Write,
    report: &RecoveryReport,
) -> std::io::Result<()> {
    if report.is_clean() {
        return Ok(());
    }
    writeln!(
        out,
        "registry recovery: {} valid entr{}, {} quarantined{}",
        report.valid.len(),
        if report.valid.len() == 1 { "y" } else { "ies" },
        report.quarantined.len(),
        if report.current_repaired {
            ", CURRENT repaired"
        } else {
            ""
        }
    )?;
    for (path, reason) in &report.quarantined {
        writeln!(out, "  quarantined {}: {reason}", path.display())?;
    }
    Ok(())
}

/// Run the command.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let inputs: Vec<PathBuf> = args
        .require("input")?
        .split(',')
        .filter(|s| !s.is_empty())
        .map(PathBuf::from)
        .collect();
    if inputs.is_empty() {
        return Err(Box::new(ArgError("--input: no files given".into())));
    }
    let registry_dir = PathBuf::from(args.require("registry")?);
    let k: usize = args.require_parsed("k")?;
    let l: f64 = args.require_parsed("l")?;
    let metric = args.get("metric").unwrap_or("manhattan").to_string();
    let params = Proclus::new(k, l)
        .seed(args.get_parsed("seed", 0u64)?)
        .restarts(args.get_parsed("restarts", 5usize)?)
        .threads(args.get_parsed("threads", 1usize)?)
        .distance(parse_metric(&metric)?)
        .round_cache(!args.switch("no-round-cache"))
        .neighbor_index(!args.switch("no-index"));
    let batch_rows: usize = args.get_parsed("batch", 256usize)?;
    if batch_rows == 0 {
        return Err(Box::new(ArgError("--batch must be positive".into())));
    }
    let config = StreamConfig {
        window: args.get_parsed("window", 2048usize)?,
        min_fit_points: args.get_parsed("min-fit", 512usize)?,
        reservoir: args.get_parsed("reservoir", 256usize)?,
        projections: args.get_parsed("projections", 8usize)?,
        drift_threshold: args.get_parsed("drift-threshold", 0.6)?,
        patience: args.get_parsed("patience", 2usize)?,
        cooldown: args.get_parsed("cooldown", 2usize)?,
        seed: args.get_parsed("stream-seed", 0u64)?,
    };
    let gates = GateConfig {
        min_silhouette: args.get_parsed("min-silhouette", 0.05)?,
        max_cost_ratio: args.get_parsed("max-cost-ratio", 1.25)?,
        max_outlier_fraction: args.get_parsed("max-outlier-fraction", 0.5)?,
        canary_fraction: args.get_parsed("canary-fraction", 0.25)?,
        min_canary_ari: args.get_parsed("min-canary-ari", 0.0)?,
        min_live_coverage: args.get_parsed("min-coverage", 0.25)?,
        ..GateConfig::default()
    };
    let verbose = args.switch("verbose");
    let trace_dir = args.get("trace-out").map(PathBuf::from);
    args.reject_unknown()?;

    let ring = verbose.then(|| RingRecorder::new(super::fit::VERBOSE_RING_CAPACITY));
    let jsonl = match &trace_dir {
        Some(dir) => Some(JsonlRecorder::create(dir)?),
        None => None,
    };
    let fanout;
    let rec: &dyn Recorder = match (&jsonl, &ring) {
        (Some(j), Some(r)) => {
            fanout = Fanout::new(j, r);
            &fanout
        }
        (Some(j), None) => j,
        (None, Some(r)) => r,
        (None, None) => &proclus_obs::NoopRecorder,
    };

    let (mut server, recovery) =
        StreamServer::new(params.clone(), config.clone(), gates, &registry_dir, rec)?;
    describe_recovery(out, &recovery)?;

    // Ingest every input through the chunk framing + fault-tolerant
    // decode path; corrupt frames become quarantined batches, never
    // aborts.
    let mut rollovers: Vec<String> = Vec::new();
    for path in &inputs {
        let bytes = if path.extension().and_then(|e| e.to_str()) == Some("chunks") {
            std::fs::read(path).map_err(|e| proclus_data::DataError::io(path, e))?
        } else {
            let (points, _) = read_dataset(path)?;
            proclus_data::encode_chunk_stream(&points, batch_rows)?
        };
        for frame in ChunkReader::new(&bytes) {
            let report = match frame {
                Ok(batch) => server.ingest_batch(&batch),
                Err(_) => server.quarantine_corrupt(),
            };
            if let Some(roll) = &report.rollover {
                rollovers.push(match &roll.outcome {
                    proclus_core::RolloverOutcome::Promoted { generation } => format!(
                        "rebuild {} [{}]: promoted as generation {generation}",
                        roll.rebuild, roll.trigger
                    ),
                    proclus_core::RolloverOutcome::RolledBack { stage, reason } => format!(
                        "rebuild {} [{}]: rolled back at {stage} ({reason})",
                        roll.rebuild, roll.trigger
                    ),
                });
            }
        }
    }

    // Close the trace stream *before* reporting success: a stashed
    // mid-stream write error must surface as this command's error.
    let manifest = match &jsonl {
        Some(jsonl) => Some(jsonl.finish(
            params_json(&params, &config, &metric),
            result_json(server.diagnostics(), server.live_generation()),
        )?),
        None => None,
    };

    let diag = server.diagnostics();
    writeln!(
        out,
        "stream: {} batches ({} points accepted, {} quarantined)",
        diag.batches,
        diag.accepted_points,
        diag.quarantined.len()
    )?;
    for (batch, reason) in &diag.quarantined {
        writeln!(out, "  batch {batch}: quarantined ({reason})")?;
    }
    writeln!(
        out,
        "rollover: {} drift detection(s), {} promoted, {} rolled back",
        diag.drift_detections, diag.promotions, diag.rollbacks
    )?;
    for line in &rollovers {
        writeln!(out, "  {line}")?;
    }
    match (server.live_generation(), server.live()) {
        (Some(g), Some(model)) => writeln!(
            out,
            "serving: generation {g} ({} clusters, objective {:.4})",
            model.clusters().len(),
            model.objective()
        )?,
        _ => writeln!(out, "serving: no live model")?,
    }
    writeln!(
        out,
        "registry: {} generation(s) {:?} at {}",
        server.registry().generations().len(),
        server.registry().generations(),
        registry_dir.display()
    )?;
    if let Some(ring) = &ring {
        let summary = TraceSummary::from_events(&ring.events(), ring.dropped());
        write!(out, "{}", summary.render())?;
    }
    if let Some(manifest) = manifest {
        writeln!(out, "trace written to {}", manifest.display())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proclus_data::SyntheticSpec;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("proclus-cli-stream-{name}-{}", std::process::id()))
    }

    const SWITCHES: &[&str] = &["verbose", "no-round-cache", "no-index"];

    #[test]
    fn streams_a_dataset_and_bootstraps_a_model() {
        let input = tmp("boot.csv");
        let registry = tmp("boot-reg");
        let _ = std::fs::remove_dir_all(&registry);
        let data = SyntheticSpec::new(600, 6, 2, 3.0).seed(5).generate();
        crate::io::write_dataset(&input, &data.points, None).unwrap();
        let args = Args::parse(
            toks(&format!(
                "--input {} --registry {} --k 2 --l 3 --batch 100 --window 400 \
                 --min-fit 300 --restarts 1",
                input.display(),
                registry.display()
            )),
            SWITCHES,
        )
        .unwrap();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        std::fs::remove_file(&input).ok();
        assert!(text.contains("stream: 6 batches"), "{text}");
        assert!(text.contains("promoted as generation 1"), "{text}");
        assert!(text.contains("serving: generation 1"), "{text}");
        assert!(registry.join("gen-000001.prcm").exists());
        assert_eq!(
            std::fs::read_to_string(registry.join("CURRENT"))
                .unwrap()
                .trim(),
            "1"
        );
        std::fs::remove_dir_all(&registry).ok();
    }

    #[test]
    fn corrupt_chunk_file_is_quarantined_not_fatal() {
        let registry = tmp("corrupt-reg");
        let chunks = std::env::temp_dir().join(format!(
            "proclus-cli-stream-corrupt-{}.chunks",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&registry);
        let data = SyntheticSpec::new(300, 5, 2, 2.0).seed(6).generate();
        let mut bytes = proclus_data::encode_chunk_stream(&data.points, 100).unwrap();
        // Flip a payload byte in the middle frame: that frame (and only
        // that frame) must quarantine.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&chunks, &bytes).unwrap();
        let args = Args::parse(
            toks(&format!(
                "--input {} --registry {} --k 2 --l 2 --batch 100 --window 400 \
                 --min-fit 400 --restarts 1",
                chunks.display(),
                registry.display()
            )),
            SWITCHES,
        )
        .unwrap();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        std::fs::remove_file(&chunks).ok();
        std::fs::remove_dir_all(&registry).ok();
        assert!(text.contains("1 quarantined"), "{text}");
        assert!(text.contains("(corrupt_chunk)"), "{text}");
    }

    #[test]
    fn invalid_stream_config_errors() {
        let input = tmp("badcfg.csv");
        let registry = tmp("badcfg-reg");
        let data = SyntheticSpec::new(100, 4, 2, 2.0).seed(1).generate();
        crate::io::write_dataset(&input, &data.points, None).unwrap();
        let args = Args::parse(
            toks(&format!(
                "--input {} --registry {} --k 2 --l 2 --patience 0",
                input.display(),
                registry.display()
            )),
            SWITCHES,
        )
        .unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        std::fs::remove_file(&input).ok();
        std::fs::remove_dir_all(&registry).ok();
        assert!(err.to_string().contains("patience"), "{err}");
    }

    #[test]
    fn trace_out_records_stream_events() {
        let input = tmp("trace.csv");
        let registry = tmp("trace-reg");
        let trace = tmp("trace-dir");
        let _ = std::fs::remove_dir_all(&registry);
        let _ = std::fs::remove_dir_all(&trace);
        let data = SyntheticSpec::new(500, 5, 2, 2.0).seed(7).generate();
        crate::io::write_dataset(&input, &data.points, None).unwrap();
        let args = Args::parse(
            toks(&format!(
                "--input {} --registry {} --k 2 --l 2 --batch 100 --window 400 \
                 --min-fit 300 --restarts 1 --trace-out {}",
                input.display(),
                registry.display(),
                trace.display()
            )),
            SWITCHES,
        )
        .unwrap();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        let events = std::fs::read_to_string(trace.join(proclus_obs::EVENTS_FILE)).unwrap();
        assert!(events.contains("\"type\":\"stream_batch\""), "{events}");
        assert!(
            events.contains("\"type\":\"rollover_transition\""),
            "{events}"
        );
        assert!(events.contains("\"type\":\"model_published\""), "{events}");
        let manifest = std::fs::read_to_string(trace.join(proclus_obs::MANIFEST_FILE)).unwrap();
        assert!(
            manifest.contains("\"algorithm\":\"proclus-stream\""),
            "{manifest}"
        );
        std::fs::remove_file(&input).ok();
        std::fs::remove_dir_all(&registry).ok();
        std::fs::remove_dir_all(&trace).ok();
    }
}
