//! `proclus evaluate` — compare a found clustering against ground
//! truth (two labeled dataset files), reproducing the paper's
//! confusion-matrix methodology plus ARI/NMI.

use crate::args::{ArgError, Args};
use crate::io::{read_dataset, validate_label_ids};
use proclus_data::Label;
use proclus_eval::{adjusted_rand_index, normalized_mutual_information, ConfusionMatrix};
use std::error::Error;
use std::io::Write;
use std::path::PathBuf;

pub const HELP: &str = "\
proclus evaluate — confusion matrix / ARI / NMI of two labeled files

  --found <path>   clustering output with a label column (required)
  --truth <path>   ground truth with a label column (required)
";

fn to_options(labels: &[Label]) -> (Vec<Option<usize>>, usize) {
    let opts: Vec<Option<usize>> = labels.iter().map(|l| l.cluster()).collect();
    let k = opts.iter().flatten().max().map_or(0, |m| m + 1);
    (opts, k)
}

/// Run the command; prints the confusion matrix and summary indices.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let found_path = PathBuf::from(args.require("found")?);
    let truth_path = PathBuf::from(args.require("truth")?);
    args.reject_unknown()?;

    let (_, found) = read_dataset(&found_path)?;
    let (_, truth) = read_dataset(&truth_path)?;
    let found =
        found.ok_or_else(|| ArgError(format!("{} has no label column", found_path.display())))?;
    let truth =
        truth.ok_or_else(|| ArgError(format!("{} has no label column", truth_path.display())))?;
    if found.len() != truth.len() {
        return Err(Box::new(ArgError(format!(
            "label counts differ: {} vs {}",
            found.len(),
            truth.len()
        ))));
    }
    // Bound label ids by the row count before they size any table.
    validate_label_ids(&found_path, &found)?;
    validate_label_ids(&truth_path, &truth)?;

    let (found, k_out) = to_options(&found);
    let (truth, k_in) = to_options(&truth);
    let cm = ConfusionMatrix::build(&found, k_out, &truth, k_in)?;
    write!(out, "{cm}")?;
    writeln!(
        out,
        "matched accuracy = {:.4}   purity = {:.4}   ARI = {:.4}   NMI = {:.4}",
        cm.matched_accuracy(),
        cm.purity(),
        adjusted_rand_index(&found, &truth)?,
        normalized_mutual_information(&found, &truth)?,
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proclus_data::SyntheticSpec;
    use proclus_math::Matrix;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("proclus-cli-eval-{name}-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn evaluates_two_labeled_files() {
        let truth_file = tmp("t.csv");
        let found_file = tmp("f.csv");
        let data = SyntheticSpec::new(200, 4, 2, 2.0).seed(8).generate();
        crate::io::write_dataset(truth_file.as_ref(), &data.points, Some(&data.labels)).unwrap();
        // "Found" = the truth itself: perfect scores expected.
        crate::io::write_dataset(found_file.as_ref(), &data.points, Some(&data.labels)).unwrap();
        let args = Args::parse(
            toks(&format!("--found {found_file} --truth {truth_file}")),
            &[],
        )
        .unwrap();
        run(&args, &mut Vec::new()).unwrap();
        std::fs::remove_file(&truth_file).ok();
        std::fs::remove_file(&found_file).ok();
    }

    #[test]
    fn missing_label_column_errors() {
        let f = tmp("nolab.csv");
        let m = Matrix::from_rows(&[[0.0], [1.0]], 1);
        crate::io::write_dataset(f.as_ref(), &m, None).unwrap();
        let args = Args::parse(toks(&format!("--found {f} --truth {f}")), &[]).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
        std::fs::remove_file(&f).ok();
    }

    #[test]
    fn length_mismatch_errors() {
        let a = tmp("a.csv");
        let b = tmp("b.csv");
        let d1 = SyntheticSpec::new(100, 4, 2, 2.0).seed(1).generate();
        let d2 = SyntheticSpec::new(50, 4, 2, 2.0).seed(1).generate();
        crate::io::write_dataset(a.as_ref(), &d1.points, Some(&d1.labels)).unwrap();
        crate::io::write_dataset(b.as_ref(), &d2.points, Some(&d2.labels)).unwrap();
        let args = Args::parse(toks(&format!("--found {a} --truth {b}")), &[]).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }
}
