//! `proclus fit` — run PROCLUS on a dataset file.

use crate::args::{ArgError, Args};
use crate::io::{assignment_labels, read_dataset, write_dataset};
use proclus_core::Proclus;
use proclus_math::DistanceKind;
use std::error::Error;
use std::io::Write;
use std::path::PathBuf;

pub const HELP: &str = "\
proclus fit — PROCLUS projected clustering (SIGMOD 1999)

  --input <path>    dataset file (.csv or binary) (required)
  --k <usize>       number of clusters (required)
  --l <f64>         average dimensions per cluster (required)
  --seed <u64>      PRNG seed [default 0]
  --restarts <n>    independent hill climbs [default 5]
  --threads <n>     worker threads for heavy passes [default 1]
  --metric <name>   manhattan | euclidean | chebyshev [default manhattan]
  --min-deviation <f> bad-medoid threshold factor [default 0.1]
  --paper-literal   disable the inner refinement (see DESIGN.md)
  --verbose         print fit diagnostics (rounds, restarts, degradations)
  --out <path>      write points + assignment labels to this file
";

/// Parse a metric name.
pub fn parse_metric(name: &str) -> Result<DistanceKind, ArgError> {
    match name {
        "manhattan" => Ok(DistanceKind::Manhattan),
        "euclidean" => Ok(DistanceKind::Euclidean),
        "chebyshev" => Ok(DistanceKind::Chebyshev),
        other => Err(ArgError(format!(
            "--metric: unknown metric {other:?} (use manhattan, euclidean, chebyshev)"
        ))),
    }
}

/// Run the command; prints the model summary.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let input = PathBuf::from(args.require("input")?);
    let k: usize = args.require_parsed("k")?;
    let l: f64 = args.require_parsed("l")?;
    let mut params = Proclus::new(k, l)
        .seed(args.get_parsed("seed", 0u64)?)
        .restarts(args.get_parsed("restarts", 5usize)?)
        .threads(args.get_parsed("threads", 1usize)?)
        .min_deviation(args.get_parsed("min-deviation", 0.1)?)
        .distance(parse_metric(args.get("metric").unwrap_or("manhattan"))?);
    if args.switch("paper-literal") {
        params = params.inner_refinements(0);
    }
    let verbose = args.switch("verbose");
    let out_path = args.get("out").map(PathBuf::from);
    args.reject_unknown()?;

    let (points, _) = read_dataset(&input)?;
    let model = params.fit(&points)?;
    writeln!(out, "{model}")?;
    if verbose {
        writeln!(out, "diagnostics: {}", model.diagnostics())?;
    }
    if let Some(path) = out_path {
        write_dataset(&path, &points, Some(&assignment_labels(model.assignment())))?;
        writeln!(out, "assignment written to {}", path.display())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proclus_data::SyntheticSpec;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("proclus-cli-fit-{name}-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn fits_and_writes_assignment() {
        let input = tmp("in.csv");
        let out = tmp("out.csv");
        let data = SyntheticSpec::new(400, 6, 2, 3.0).seed(2).generate();
        crate::io::write_dataset(input.as_ref(), &data.points, None).unwrap();

        let args = Args::parse(
            toks(&format!("--input {input} --k 2 --l 3 --seed 1 --out {out}")),
            &["paper-literal"],
        )
        .unwrap();
        run(&args, &mut Vec::new()).unwrap();
        let (points, labels) = crate::io::read_dataset(out.as_ref()).unwrap();
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&out).ok();
        assert_eq!(points.rows(), 400);
        assert_eq!(labels.unwrap().len(), 400);
    }

    #[test]
    fn verbose_prints_diagnostics() {
        let input = tmp("verb.csv");
        let data = SyntheticSpec::new(300, 5, 2, 3.0).seed(4).generate();
        crate::io::write_dataset(input.as_ref(), &data.points, None).unwrap();
        let args = Args::parse(
            toks(&format!("--input {input} --k 2 --l 3 --verbose")),
            &["paper-literal", "verbose"],
        )
        .unwrap();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        std::fs::remove_file(&input).ok();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("diagnostics:"), "{text}");
        assert!(text.contains("restarts"), "{text}");
    }

    #[test]
    fn metric_parsing() {
        assert_eq!(parse_metric("manhattan").unwrap(), DistanceKind::Manhattan);
        assert_eq!(parse_metric("euclidean").unwrap(), DistanceKind::Euclidean);
        assert!(parse_metric("cosine").is_err());
    }

    #[test]
    fn invalid_params_surface_as_errors() {
        let input = tmp("bad.csv");
        let data = SyntheticSpec::new(50, 4, 2, 2.0).seed(1).generate();
        crate::io::write_dataset(input.as_ref(), &data.points, None).unwrap();
        // l > d.
        let args = Args::parse(
            toks(&format!("--input {input} --k 2 --l 9")),
            &["paper-literal"],
        )
        .unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn missing_input_file_errors() {
        let args = Args::parse(
            toks("--input /nonexistent/x.csv --k 2 --l 2"),
            &["paper-literal"],
        )
        .unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
    }
}
