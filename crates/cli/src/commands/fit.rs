//! `proclus fit` — run PROCLUS on a dataset file.

use crate::args::{ArgError, Args};
use crate::io::{assignment_labels, read_dataset, write_dataset};
use proclus_core::{Proclus, ProclusModel};
use proclus_math::DistanceKind;
use proclus_obs::json::Json;
use proclus_obs::{Fanout, JsonlRecorder, RingRecorder, TraceSummary};
use std::error::Error;
use std::io::Write;
use std::path::{Path, PathBuf};

pub const HELP: &str = "\
proclus fit — PROCLUS projected clustering (SIGMOD 1999)

  --input <path>    dataset file (.csv or binary) (required)
  --k <usize>       number of clusters (required)
  --l <f64>         average dimensions per cluster (required)
  --seed <u64>      PRNG seed [default 0]
  --restarts <n>    independent hill climbs [default 5]
  --threads <n>     worker threads for heavy passes [default 1]
  --metric <name>   manhattan | euclidean | chebyshev [default manhattan]
  --min-deviation <f> bad-medoid threshold factor [default 0.1]
  --paper-literal   disable the inner refinement (see DESIGN.md)
  --no-round-cache  recompute every round from scratch instead of the
                    incremental cross-round cache (results are
                    bit-identical either way; see DESIGN.md §5d)
  --no-index        skip the exact-pruning neighbor index (sketch +
                    triangle bounds); every distance is then computed
                    directly (results are bit-identical either way;
                    see DESIGN.md §5e)
  --fast-math       opt into the exactness-gated f32 screening fast
                    path in the assignment kernels (results are
                    bit-identical either way; engages where distances
                    are evaluated directly, so pair with
                    --no-round-cache; see DESIGN.md §5h)
  --verbose         print the recorded trace summary (convergence,
                    swap history) plus fit diagnostics
  --trace-out <dir> stream events.jsonl + run.json into this directory
                    (inspect later with `proclus inspect-trace`)
  --out <path>      write points + assignment labels to this file
";

/// Ring capacity for the `--verbose` summary; old events are evicted
/// (and counted) beyond this, which the summary reports.
pub(crate) const VERBOSE_RING_CAPACITY: usize = 8192;

/// Parse a metric name.
pub fn parse_metric(name: &str) -> Result<DistanceKind, ArgError> {
    match name {
        "manhattan" => Ok(DistanceKind::Manhattan),
        "euclidean" => Ok(DistanceKind::Euclidean),
        "chebyshev" => Ok(DistanceKind::Chebyshev),
        other => Err(ArgError(format!(
            "--metric: unknown metric {other:?} (use manhattan, euclidean, chebyshev)"
        ))),
    }
}

/// The `params` object of the `run.json` manifest.
fn params_json(input: &Path, params: &Proclus, metric: &str, paper_literal: bool) -> Json {
    Json::Obj(vec![
        ("round_cache".into(), Json::Bool(params.round_cache)),
        ("neighbor_index".into(), Json::Bool(params.neighbor_index)),
        ("fast_math".into(), Json::Bool(params.fast_math)),
        ("algorithm".into(), Json::Str("proclus".into())),
        ("input".into(), Json::Str(input.display().to_string())),
        ("k".into(), Json::Num(params.k as f64)),
        ("l".into(), Json::Num(params.l)),
        ("seed".into(), Json::Num(params.rng_seed as f64)),
        ("restarts".into(), Json::Num(params.restarts as f64)),
        ("threads".into(), Json::Num(params.threads as f64)),
        ("metric".into(), Json::Str(metric.into())),
        ("min_deviation".into(), Json::Num(params.min_deviation)),
        ("paper_literal".into(), Json::Bool(paper_literal)),
    ])
}

/// The `result` object of the `run.json` manifest.
fn result_json(model: &ProclusModel) -> Json {
    let sizes: Vec<Json> = model
        .clusters()
        .iter()
        .map(|c| Json::Num(c.members.len() as f64))
        .collect();
    Json::Obj(vec![
        ("clusters".into(), Json::Num(model.clusters().len() as f64)),
        ("objective".into(), Json::Num(model.objective())),
        (
            "iterative_objective".into(),
            Json::Num(model.iterative_objective()),
        ),
        ("rounds".into(), Json::Num(model.rounds() as f64)),
        (
            "improvements".into(),
            Json::Num(model.improvements() as f64),
        ),
        ("outliers".into(), Json::Num(model.outliers().len() as f64)),
        ("cluster_sizes".into(), Json::Arr(sizes)),
    ])
}

/// Run the command; prints the model summary.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let input = PathBuf::from(args.require("input")?);
    let k: usize = args.require_parsed("k")?;
    let l: f64 = args.require_parsed("l")?;
    let metric = args.get("metric").unwrap_or("manhattan").to_string();
    let paper_literal = args.switch("paper-literal");
    let mut params = Proclus::new(k, l)
        .seed(args.get_parsed("seed", 0u64)?)
        .restarts(args.get_parsed("restarts", 5usize)?)
        .threads(args.get_parsed("threads", 1usize)?)
        .min_deviation(args.get_parsed("min-deviation", 0.1)?)
        .distance(parse_metric(&metric)?)
        .round_cache(!args.switch("no-round-cache"))
        .neighbor_index(!args.switch("no-index"))
        .fast_math(args.switch("fast-math"));
    if paper_literal {
        params = params.inner_refinements(0);
    }
    let verbose = args.switch("verbose");
    let trace_dir = args.get("trace-out").map(PathBuf::from);
    let out_path = args.get("out").map(PathBuf::from);
    args.reject_unknown()?;

    let (points, _) = read_dataset(&input)?;

    // Recorders: a ring feeds the --verbose summary, a jsonl recorder
    // streams --trace-out; both at once fan out.
    let ring = verbose.then(|| RingRecorder::new(VERBOSE_RING_CAPACITY));
    let jsonl = match &trace_dir {
        Some(dir) => Some(JsonlRecorder::create(dir)?),
        None => None,
    };
    let model = match (&jsonl, &ring) {
        (Some(j), Some(r)) => params.fit_traced(&points, &Fanout::new(j, r))?,
        (Some(j), None) => params.fit_traced(&points, j)?,
        (None, Some(r)) => params.fit_traced(&points, r)?,
        (None, None) => params.fit(&points)?,
    };

    // Close the trace stream *before* reporting success: JsonlRecorder
    // stashes mid-stream write errors until finish, and a fit whose
    // trace was lost must fail (exit 74) rather than print a model
    // summary over a truncated events.jsonl.
    let manifest = match &jsonl {
        Some(jsonl) => Some(jsonl.finish(
            params_json(&input, &params, &metric, paper_literal),
            result_json(&model),
        )?),
        None => None,
    };

    writeln!(out, "{model}")?;
    if let Some(ring) = &ring {
        let summary = TraceSummary::from_events(&ring.events(), ring.dropped());
        write!(out, "{}", summary.render())?;
        writeln!(out, "diagnostics: {}", model.diagnostics())?;
    }
    if let Some(manifest) = manifest {
        writeln!(out, "trace written to {}", manifest.display())?;
    }
    if let Some(path) = out_path {
        write_dataset(&path, &points, Some(&assignment_labels(model.assignment())))?;
        writeln!(out, "assignment written to {}", path.display())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proclus_data::SyntheticSpec;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("proclus-cli-fit-{name}-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn fits_and_writes_assignment() {
        let input = tmp("in.csv");
        let out = tmp("out.csv");
        let data = SyntheticSpec::new(400, 6, 2, 3.0).seed(2).generate();
        crate::io::write_dataset(input.as_ref(), &data.points, None).unwrap();

        let args = Args::parse(
            toks(&format!("--input {input} --k 2 --l 3 --seed 1 --out {out}")),
            &["paper-literal"],
        )
        .unwrap();
        run(&args, &mut Vec::new()).unwrap();
        let (points, labels) = crate::io::read_dataset(out.as_ref()).unwrap();
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&out).ok();
        assert_eq!(points.rows(), 400);
        assert_eq!(labels.unwrap().len(), 400);
    }

    #[test]
    fn verbose_prints_diagnostics() {
        let input = tmp("verb.csv");
        let data = SyntheticSpec::new(300, 5, 2, 3.0).seed(4).generate();
        crate::io::write_dataset(input.as_ref(), &data.points, None).unwrap();
        let args = Args::parse(
            toks(&format!("--input {input} --k 2 --l 3 --verbose")),
            &["paper-literal", "verbose"],
        )
        .unwrap();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        std::fs::remove_file(&input).ok();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("diagnostics:"), "{text}");
        assert!(text.contains("restarts"), "{text}");
        // The stable recorder-backed summary, not ad-hoc prints.
        assert!(text.contains("algorithm: proclus"), "{text}");
        assert!(text.contains("result: objective="), "{text}");
    }

    #[test]
    fn trace_out_writes_manifest_and_events() {
        let input = tmp("trace-in.csv");
        let dir =
            std::env::temp_dir().join(format!("proclus-cli-fit-trace-{}", std::process::id()));
        let data = SyntheticSpec::new(300, 5, 2, 3.0).seed(3).generate();
        crate::io::write_dataset(input.as_ref(), &data.points, None).unwrap();
        let args = Args::parse(
            toks(&format!(
                "--input {input} --k 2 --l 3 --trace-out {}",
                dir.display()
            )),
            &["paper-literal", "verbose"],
        )
        .unwrap();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        std::fs::remove_file(&input).ok();
        assert!(text.contains("trace written to"), "{text}");
        let manifest = std::fs::read_to_string(dir.join(proclus_obs::MANIFEST_FILE)).unwrap();
        assert!(manifest.contains("\"schema_version\":1"), "{manifest}");
        assert!(manifest.contains("\"algorithm\":\"proclus\""), "{manifest}");
        let events = std::fs::read_to_string(dir.join(proclus_obs::EVENTS_FILE)).unwrap();
        let first = events.lines().next().unwrap();
        assert!(first.contains("\"type\":\"fit_start\""), "{first}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `--no-round-cache` is accepted and produces byte-identical
    /// output (the cache is a pure performance layer).
    #[test]
    fn no_round_cache_flag_changes_nothing_but_the_manifest() {
        let input = tmp("nrc.csv");
        let data = SyntheticSpec::new(300, 5, 2, 3.0).seed(8).generate();
        crate::io::write_dataset(input.as_ref(), &data.points, None).unwrap();
        let run_with = |extra: &str| {
            let args = Args::parse(
                toks(&format!("--input {input} --k 2 --l 3 --seed 2{extra}")),
                &["paper-literal", "verbose", "no-round-cache"],
            )
            .unwrap();
            let mut buf = Vec::new();
            run(&args, &mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        };
        let cached = run_with("");
        let uncached = run_with(" --no-round-cache");
        std::fs::remove_file(&input).ok();
        assert_eq!(
            cached, uncached,
            "model summary must not depend on the cache"
        );
    }

    /// `--no-index` is accepted and produces byte-identical output
    /// (the pruning index is a pure performance layer).
    #[test]
    fn no_index_flag_changes_nothing_but_the_manifest() {
        let input = tmp("noidx.csv");
        let data = SyntheticSpec::new(300, 5, 2, 3.0).seed(9).generate();
        crate::io::write_dataset(input.as_ref(), &data.points, None).unwrap();
        let run_with = |extra: &str| {
            let args = Args::parse(
                toks(&format!("--input {input} --k 2 --l 3 --seed 2{extra}")),
                &[
                    "paper-literal",
                    "verbose",
                    "no-round-cache",
                    "no-index",
                    "fast-math",
                ],
            )
            .unwrap();
            let mut buf = Vec::new();
            run(&args, &mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        };
        let indexed = run_with("");
        let unindexed = run_with(" --no-index");
        std::fs::remove_file(&input).ok();
        assert_eq!(
            indexed, unindexed,
            "model summary must not depend on the pruning index"
        );
    }

    /// `--trace-out` into an unwritable location must fail the command
    /// with a located I/O error (the CLI maps it to exit 74) and leave
    /// no truncated events.jsonl behind.
    #[test]
    fn unwritable_trace_dir_fails_with_located_io_error() {
        let input = tmp("badtrace.csv");
        let data = SyntheticSpec::new(200, 5, 2, 2.0).seed(5).generate();
        crate::io::write_dataset(input.as_ref(), &data.points, None).unwrap();
        // A *file* where the trace directory's parent should be makes
        // every create under it fail naturally (works even as root,
        // where permission bits are ignored).
        let blocker = tmp("blocker");
        std::fs::write(&blocker, b"not a directory").unwrap();
        let trace_dir = format!("{blocker}/trace");
        let args = Args::parse(
            toks(&format!(
                "--input {input} --k 2 --l 2 --trace-out {trace_dir}"
            )),
            &["paper-literal"],
        )
        .unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        std::fs::remove_file(&input).ok();
        let msg = err.to_string();
        assert!(msg.contains(&trace_dir) || msg.contains(&blocker), "{msg}");
        assert_eq!(crate::exit_code_for(err.as_ref()), 74, "{msg}");
        assert!(!std::path::Path::new(&trace_dir)
            .join(proclus_obs::EVENTS_FILE)
            .exists());
        std::fs::remove_file(&blocker).ok();
    }

    #[test]
    fn metric_parsing() {
        assert_eq!(parse_metric("manhattan").unwrap(), DistanceKind::Manhattan);
        assert_eq!(parse_metric("euclidean").unwrap(), DistanceKind::Euclidean);
        assert!(parse_metric("cosine").is_err());
    }

    #[test]
    fn invalid_params_surface_as_errors() {
        let input = tmp("bad.csv");
        let data = SyntheticSpec::new(50, 4, 2, 2.0).seed(1).generate();
        crate::io::write_dataset(input.as_ref(), &data.points, None).unwrap();
        // l > d.
        let args = Args::parse(
            toks(&format!("--input {input} --k 2 --l 9")),
            &["paper-literal"],
        )
        .unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn missing_input_file_errors() {
        let args = Args::parse(
            toks("--input /nonexistent/x.csv --k 2 --l 2"),
            &["paper-literal"],
        )
        .unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
    }
}
