//! `proclus generate` — synthesize a projected-cluster dataset
//! (the paper's §4.1 generator).

use crate::args::{ArgError, Args};
use crate::io::write_dataset;
use proclus_data::SyntheticSpec;
use std::error::Error;
use std::io::Write;
use std::path::PathBuf;

pub const HELP: &str = "\
proclus generate — synthesize a projected-cluster dataset (SIGMOD 1999, 4.1)

  --n <usize>            number of points (required)
  --dims <usize>         dimensionality of the space (required)
  --clusters <usize>     number of clusters k (required)
  --avg-cluster-dims <f> Poisson mean for per-cluster dimensionality
  --fixed-dims <list>    exact per-cluster dims, e.g. 7,3,2,6,2
                         (overrides --avg-cluster-dims)
  --outliers <f>         outlier fraction [default 0.05]
  --min-size-ratio <f>   cluster size floor vs even share [default 0.5]
  --seed <u64>           PRNG seed [default 0]
  --out <path>           output file (.csv = text, else binary) (required)
  --no-labels            omit the ground-truth label column
";

/// Run the command; prints a one-line summary on success.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let n: usize = args.require_parsed("n")?;
    let d: usize = args.require_parsed("dims")?;
    let k: usize = args.require_parsed("clusters")?;
    let out_path: PathBuf = PathBuf::from(args.require("out")?);
    let avg: f64 = args.get_parsed("avg-cluster-dims", 3.0)?;
    let mut spec = SyntheticSpec::new(n, d, k, avg)
        .seed(args.get_parsed("seed", 0u64)?)
        .outlier_fraction(args.get_parsed("outliers", 0.05)?)
        .min_size_ratio(args.get_parsed("min-size-ratio", 0.5)?);
    if let Some(list) = args.get("fixed-dims") {
        let dims: Result<Vec<usize>, _> = list.split(',').map(str::parse).collect();
        spec = spec.fixed_dims(
            dims.map_err(|_| ArgError(format!("--fixed-dims: cannot parse {list:?}")))?,
        );
    }
    let no_labels = args.switch("no-labels");
    args.reject_unknown()?;
    spec.validate().map_err(ArgError)?;

    let data = spec.try_generate()?;
    let labels = (!no_labels).then_some(data.labels.as_slice());
    write_dataset(&out_path, &data.points, labels)?;
    writeln!(
        out,
        "wrote {} points x {} dims ({} clusters, {} outliers) to {}",
        data.len(),
        d,
        k,
        data.outlier_count(),
        out_path.display()
    )?;
    for (i, c) in data.clusters.iter().enumerate() {
        writeln!(out, "  cluster {i}: {} points, dims {:?}", c.size, c.dims)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("proclus-cli-gen-{name}-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn generates_labeled_csv() {
        let out = tmp("a.csv");
        let args = Args::parse(
            toks(&format!(
                "--n 200 --dims 6 --clusters 2 --seed 3 --out {out}"
            )),
            &["no-labels"],
        )
        .unwrap();
        run(&args, &mut Vec::new()).unwrap();
        let (m, labels) = crate::io::read_dataset(out.as_ref()).unwrap();
        std::fs::remove_file(&out).ok();
        assert_eq!(m.rows(), 200);
        assert_eq!(m.cols(), 6);
        assert!(labels.is_some());
    }

    #[test]
    fn no_labels_switch_omits_labels() {
        let out = tmp("b.csv");
        let args = Args::parse(
            toks(&format!(
                "--n 100 --dims 4 --clusters 2 --out {out} --no-labels"
            )),
            &["no-labels"],
        )
        .unwrap();
        run(&args, &mut Vec::new()).unwrap();
        let (_, labels) = crate::io::read_dataset(out.as_ref()).unwrap();
        std::fs::remove_file(&out).ok();
        assert!(labels.is_none());
    }

    #[test]
    fn fixed_dims_parse_and_validate() {
        let out = tmp("c.prcl");
        let args = Args::parse(
            toks(&format!(
                "--n 300 --dims 8 --clusters 3 --fixed-dims 4,2,3 --out {out}"
            )),
            &["no-labels"],
        )
        .unwrap();
        run(&args, &mut Vec::new()).unwrap();
        std::fs::remove_file(&out).ok();
        // Bad list.
        let args = Args::parse(
            toks(&format!(
                "--n 300 --dims 8 --clusters 3 --fixed-dims x,y --out {out}"
            )),
            &["no-labels"],
        )
        .unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
    }

    #[test]
    fn missing_required_option_errors() {
        let args = Args::parse(toks("--n 100 --dims 4"), &[]).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
    }

    #[test]
    fn unknown_option_errors() {
        let out = tmp("d.csv");
        let args = Args::parse(
            toks(&format!(
                "--n 100 --dims 4 --clusters 2 --out {out} --bogus 1"
            )),
            &["no-labels"],
        )
        .unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
        std::fs::remove_file(&out).ok();
    }
}
