//! `proclus orclus` — generalized (oriented) projected clustering.

use crate::args::Args;
use crate::io::{read_dataset, write_dataset};
use proclus_data::Label;
use proclus_orclus::Orclus;
use std::error::Error;
use std::io::Write;
use std::path::PathBuf;

pub const HELP: &str = "\
proclus orclus — generalized projected clustering (ORCLUS, SIGMOD 2000)

  --input <path>   dataset file (.csv or binary) (required)
  --k <usize>      number of clusters (required)
  --l <usize>      subspace dimensionality per cluster (required)
  --seed <u64>     PRNG seed [default 0]
  --k0 <usize>     initial seed count [default 5k]
  --alpha <f64>    cluster-count decay per phase [default 0.5]
  --out <path>     write points + assignment labels to this file
";

/// Run the command; prints per-cluster energies and bases.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let input = PathBuf::from(args.require("input")?);
    let k: usize = args.require_parsed("k")?;
    let l: usize = args.require_parsed("l")?;
    let mut params = Orclus::new(k, l)
        .seed(args.get_parsed("seed", 0u64)?)
        .alpha(args.get_parsed("alpha", 0.5)?);
    if let Some(v) = args.get("k0") {
        params = params.initial_seeds(v.parse()?);
    }
    let out_path = args.get("out").map(PathBuf::from);
    args.reject_unknown()?;

    let (points, _) = read_dataset(&input)?;
    let model = params.fit(&points)?;
    writeln!(
        out,
        "ORCLUS: {} clusters, objective {:.4}",
        model.clusters.len(),
        model.objective
    )?;
    for (i, c) in model.clusters.iter().enumerate() {
        writeln!(
            out,
            "  cluster {i}: {} points, projected energy {:.4}",
            c.len(),
            c.projected_energy
        )?;
        for r in 0..c.basis.rows() {
            let coeffs: Vec<String> = c.basis.row(r).iter().map(|v| format!("{v:+.3}")).collect();
            writeln!(out, "      tight direction {r}: [{}]", coeffs.join(", "))?;
        }
    }
    if let Some(path) = out_path {
        let labels: Vec<Label> = model
            .assignment
            .iter()
            .map(|&a| Label::Cluster(a))
            .collect();
        write_dataset(&path, &points, Some(&labels))?;
        writeln!(out, "assignment written to {}", path.display())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proclus_data::SyntheticSpec;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("proclus-cli-orc-{name}-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn runs_and_writes_assignment() {
        let input = tmp("in.prcl");
        let out = tmp("out.csv");
        let data = SyntheticSpec::new(300, 5, 2, 2.0)
            .fixed_dims(vec![2, 2])
            .seed(6)
            .generate();
        crate::io::write_dataset(input.as_ref(), &data.points, None).unwrap();
        let args = Args::parse(
            toks(&format!(
                "--input {input} --k 2 --l 2 --seed 1 --k0 6 --out {out}"
            )),
            &[],
        )
        .unwrap();
        run(&args, &mut Vec::new()).unwrap();
        let (_, labels) = crate::io::read_dataset(out.as_ref()).unwrap();
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&out).ok();
        assert_eq!(labels.unwrap().len(), 300);
    }

    #[test]
    fn invalid_l_errors() {
        let input = tmp("bad.csv");
        let data = SyntheticSpec::new(100, 4, 2, 2.0).seed(1).generate();
        crate::io::write_dataset(input.as_ref(), &data.points, None).unwrap();
        let args = Args::parse(toks(&format!("--input {input} --k 2 --l 99")), &[]).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
        std::fs::remove_file(&input).ok();
    }
}
