//! `proclus serve` — the resident clustering daemon.
//!
//! Binds a TCP address, opens (or creates) a model registry, and
//! serves the HTTP API from `proclus-serve` until `POST /v1/shutdown`
//! drains it: dataset upload, async fits on a bounded queue, and
//! point-batch assign/classify from the registry's `CURRENT` model —
//! so promotions made by a concurrent `proclus stream` process are
//! visible to traffic on the very next request.

use crate::args::Args;
use proclus_obs::json::Json;
use proclus_obs::{JsonlRecorder, NoopRecorder, Recorder};
use proclus_serve::{start, ServeConfig};
use std::error::Error;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

pub const HELP: &str = "\
proclus serve — resident clustering server (upload / fit / assign)

  --registry <dir>  model registry directory (created if missing; a
                    recovery scan quarantines partial/corrupt entries)
                    (required)
  --addr <host:port> address to bind [default 127.0.0.1:0]
                    (port 0 picks an ephemeral port, printed on start)
  --queue <n>       fit job queue capacity; a full queue answers 429
                    [default 4]
  --threads <n>     worker threads per fit [default 1]
  --trace-out <dir> stream serve events.jsonl + run.json into this
                    directory (closed when the server drains)

The server runs until `POST /v1/shutdown` (or SIGKILL). Shutdown is
graceful: queued fit jobs are drained, in-flight requests complete,
then every thread is joined. See DESIGN.md §5g for the protocol.
";

fn params_json(addr: &str, config: &ServeConfig) -> Json {
    Json::Obj(vec![
        ("algorithm".into(), Json::Str("proclus-serve".into())),
        ("addr".into(), Json::Str(addr.into())),
        (
            "registry".into(),
            Json::Str(config.registry_dir.display().to_string()),
        ),
        (
            "queue_capacity".into(),
            Json::Num(config.queue_capacity as f64),
        ),
        ("threads".into(), Json::Num(config.threads as f64)),
    ])
}

/// Run the command. Blocks until the server is asked to shut down.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let registry_dir = PathBuf::from(args.require("registry")?);
    let addr = args.get("addr").unwrap_or("127.0.0.1:0").to_string();
    let config = ServeConfig {
        registry_dir,
        queue_capacity: args.get_parsed("queue", 4usize)?,
        threads: args.get_parsed("threads", 1usize)?,
    };
    let trace_dir = args.get("trace-out").map(PathBuf::from);
    args.reject_unknown()?;

    let jsonl: Option<Arc<JsonlRecorder>> = match &trace_dir {
        Some(dir) => Some(Arc::new(JsonlRecorder::create(dir)?)),
        None => None,
    };
    let recorder: Arc<dyn Recorder + Send> = match &jsonl {
        Some(j) => j.clone(),
        None => Arc::new(NoopRecorder),
    };

    let server = start(&addr, config.clone(), recorder)?;
    super::stream::describe_recovery(out, server.state().recovery_report())?;
    writeln!(out, "listening on {}", server.addr())?;
    // The address line is the startup handshake scripts wait for (the
    // CI smoke job parses the ephemeral port out of it), so it must
    // reach the pipe before we block in wait().
    out.flush()?;

    let jobs = server.state().clone();
    server.wait();

    let done = jobs
        .list_jobs()
        .iter()
        .filter(|j| matches!(j.state, proclus_serve::JobState::Done { .. }))
        .count();
    let failed = jobs
        .list_jobs()
        .iter()
        .filter(|j| matches!(j.state, proclus_serve::JobState::Failed { .. }))
        .count();
    writeln!(
        out,
        "serve: drained ({} job{} done, {failed} failed)",
        done,
        if done == 1 { "" } else { "s" }
    )?;

    // Close the trace stream *before* reporting success: a stashed
    // mid-stream write error must surface as this command's error.
    if let Some(jsonl) = &jsonl {
        let result = Json::Obj(vec![
            ("jobs_done".into(), Json::Num(done as f64)),
            ("jobs_failed".into(), Json::Num(failed as f64)),
        ]);
        let manifest = jsonl.finish(params_json(&addr, &config), result)?;
        writeln!(out, "trace written to {}", manifest.display())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;
    use std::net::TcpStream;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("proclus-cli-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn missing_registry_is_a_usage_error() {
        let args = Args::parse(toks(""), &[]).unwrap();
        let mut out = Vec::new();
        let err = run(&args, &mut out).unwrap_err();
        assert!(err.to_string().contains("registry"), "{err}");
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let reg = tmp_dir("unknown-flag");
        let args = Args::parse(
            toks(&format!("--registry {} --bogus 1", reg.display())),
            &[],
        )
        .unwrap();
        let mut out = Vec::new();
        let err = run(&args, &mut out).unwrap_err();
        assert!(err.to_string().contains("bogus"), "{err}");
    }

    /// Full loop through the real `run`: serve on an ephemeral port in
    /// a thread, shut it down over the wire, and check the report.
    #[test]
    fn serves_and_reports_drain_on_shutdown() {
        let reg = tmp_dir("roundtrip");
        let args = Args::parse(
            toks(&format!("--registry {} --addr 127.0.0.1:0", reg.display())),
            &[],
        )
        .unwrap();
        // Pipe: the runner writes "listening on ADDR\n" and flushes
        // before blocking, so the parent can read the port back.
        let (mut reader, mut writer) = std::io::pipe().unwrap();
        let t = std::thread::spawn(move || run(&args, &mut writer).map_err(|e| e.to_string()));
        let mut line = Vec::new();
        loop {
            let mut b = [0u8; 1];
            reader.read_exact(&mut b).unwrap();
            if b[0] == b'\n' {
                break;
            }
            line.push(b[0]);
        }
        let line = String::from_utf8(line).unwrap();
        let addr = line.strip_prefix("listening on ").unwrap().trim();
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /v1/shutdown HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 202"), "{resp}");
        t.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&reg);
    }
}
