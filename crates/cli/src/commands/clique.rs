//! `proclus clique` — run the CLIQUE baseline on a dataset file.

use crate::args::Args;
use crate::io::read_dataset;
use proclus_clique::{minimal_descriptions, Clique};
use std::error::Error;
use std::io::Write;
use std::path::PathBuf;

pub const HELP: &str = "\
proclus clique — CLIQUE grid/density subspace clustering (SIGMOD 1998)

  --input <path>      dataset file (.csv or binary) (required)
  --xi <u16>          intervals per dimension [default 10]
  --tau <f64>         density threshold, fraction of N [default 0.005]
  --max-dim <usize>   cap on mined subspace dimensionality
  --target-dim <usize> report only clusters of exactly this dimensionality
  --mdl               enable MDL subspace pruning
  --descriptions      print minimal rectangle descriptions per cluster
  --top <usize>       print at most this many clusters [default 20]
";

/// Run the command; prints cluster list, coverage, overlap.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let input = PathBuf::from(args.require("input")?);
    let mut clique = Clique::new(
        args.get_parsed("xi", 10u16)?,
        args.get_parsed("tau", 0.005f64)?,
    );
    if let Some(v) = args.get("max-dim") {
        clique = clique.max_subspace_dim(Some(v.parse()?));
    }
    if let Some(v) = args.get("target-dim") {
        clique = clique.target_subspace_dim(Some(v.parse()?));
    }
    clique = clique.mdl_pruning(args.switch("mdl"));
    let descriptions = args.switch("descriptions");
    let top: usize = args.get_parsed("top", 20usize)?;
    args.reject_unknown()?;

    let (points, _) = read_dataset(&input)?;
    let model = clique.fit(&points)?;
    writeln!(
        out,
        "CLIQUE: {} clusters, coverage {:.1}%, average overlap {:.2}",
        model.clusters().len(),
        100.0 * model.coverage(),
        model.overlap()
    )?;
    for (i, c) in model.clusters().iter().take(top).enumerate() {
        writeln!(
            out,
            "  cluster {i}: dims {:?}, {} units, {} points",
            c.dims,
            c.units.len(),
            c.members.len()
        )?;
        if descriptions {
            for r in minimal_descriptions(&c.units) {
                let ranges: Vec<String> =
                    r.lo.iter()
                        .zip(&r.hi)
                        .zip(&r.dims)
                        .map(|((lo, hi), d)| format!("d{d}:[{lo}..={hi}]"))
                        .collect();
                writeln!(out, "      region {}", ranges.join(" x "))?;
            }
        }
    }
    if model.clusters().len() > top {
        writeln!(out, "  ... and {} more", model.clusters().len() - top)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proclus_data::SyntheticSpec;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("proclus-cli-clq-{name}-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn runs_on_generated_data() {
        let input = tmp("in.csv");
        let data = SyntheticSpec::new(500, 5, 2, 2.0).seed(4).generate();
        crate::io::write_dataset(input.as_ref(), &data.points, None).unwrap();
        let args = Args::parse(
            toks(&format!(
                "--input {input} --xi 8 --tau 0.02 --max-dim 3 --descriptions"
            )),
            &["descriptions"],
        )
        .unwrap();
        run(&args, &mut Vec::new()).unwrap();
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn bad_tau_errors() {
        let input = tmp("bad.csv");
        let data = SyntheticSpec::new(100, 4, 2, 2.0).seed(4).generate();
        crate::io::write_dataset(input.as_ref(), &data.points, None).unwrap();
        let args = Args::parse(
            toks(&format!("--input {input} --tau abc")),
            &["descriptions"],
        )
        .unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
        // A parseable but out-of-range tau is a typed fit error.
        let args = Args::parse(
            toks(&format!("--input {input} --tau 0.0")),
            &["descriptions"],
        )
        .unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
        std::fs::remove_file(&input).ok();
    }
}
