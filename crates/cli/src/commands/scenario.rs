//! `proclus scenario` — generate a declarative workload scenario from
//! a canonical `.scn` spec file (mixed distributions, rotated
//! subspaces, size laws, typed columns, drift epochs), streaming rows
//! straight to disk.

use crate::args::{ArgError, Args};
use proclus_data::scenario::ScenarioSpec;
use proclus_data::DataError;
use proclus_obs::json::Json;
use proclus_obs::{Event, JsonlRecorder, Recorder};
use std::error::Error;
use std::io::Write;
use std::path::{Path, PathBuf};

pub const HELP: &str = "\
proclus scenario — generate a workload scenario from a .scn spec file

  --spec <file.scn>   canonical scenario spec (required)
  --out <path>        output file; format from extension unless --format
                      (.csv = labeled text, .chunks = PRCK frames,
                      anything else = labeled PRCL binary)
  --format <name>     force csv | prcl | chunks regardless of extension
  --batch-rows <n>    rows per PRCK frame for chunks output [default 256]
  --trace-out <dir>   write a scenario_meta trace (events.jsonl + run.json)
  --print-canonical   print the parsed spec in canonical form

Without --out the scenario is generated and summarized (digest, truth)
but not written — a dry run that still validates determinism.
";

/// Output encodings the command can stream to.
enum Format {
    Csv,
    Prcl,
    Chunks,
}

fn pick_format(args: &Args, out: &Path) -> Result<Format, ArgError> {
    if let Some(name) = args.get("format") {
        return match name {
            "csv" => Ok(Format::Csv),
            "prcl" => Ok(Format::Prcl),
            "chunks" => Ok(Format::Chunks),
            other => Err(ArgError(format!(
                "--format: expected csv|prcl|chunks, got {other:?}"
            ))),
        };
    }
    Ok(match out.extension().and_then(|e| e.to_str()) {
        Some("csv") => Format::Csv,
        Some("chunks") => Format::Chunks,
        _ => Format::Prcl,
    })
}

/// Run the command; prints a deterministic summary on success.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), Box<dyn Error>> {
    let spec_path = PathBuf::from(args.require("spec")?);
    let out_path = args.get("out").map(PathBuf::from);
    let batch_rows: usize = args.get_parsed("batch-rows", 256usize)?;
    let trace_dir = args.get("trace-out").map(PathBuf::from);
    let print_canonical = args.switch("print-canonical");
    let format = match &out_path {
        Some(p) => Some(pick_format(args, p)?),
        None => None,
    };
    args.reject_unknown()?;

    let text = std::fs::read_to_string(&spec_path).map_err(|e| DataError::io(&spec_path, e))?;
    let spec = ScenarioSpec::parse(&text)
        .map_err(|e| DataError::InvalidSpec(format!("{}: {e}", spec_path.display())))?;

    if print_canonical {
        write!(out, "{}", spec.to_canonical())?;
    }

    let jsonl = match &trace_dir {
        Some(dir) => Some(JsonlRecorder::create(dir)?),
        None => None,
    };
    if let Some(rec) = &jsonl {
        rec.event(&Event::ScenarioMeta {
            name: spec.name.clone(),
            seed: spec.base.seed,
            epochs: spec.epochs(),
        });
    }

    let digest = spec.digest()?;
    let truth = match (&out_path, format) {
        (Some(path), Some(Format::Csv)) => spec.write_csv(path)?,
        (Some(path), Some(Format::Prcl)) => spec.write_prcl(path)?,
        (Some(path), Some(Format::Chunks)) => spec.write_chunks(path, batch_rows)?,
        // Dry run: generate (and digest) without writing anything.
        _ => spec.for_each_row(|_, _, _| {})?,
    };

    if let Some(rec) = &jsonl {
        rec.finish(
            Json::Obj(vec![
                ("scenario".into(), Json::Str(spec.name.clone())),
                ("seed".into(), Json::Num(spec.base.seed as f64)),
                ("epochs".into(), Json::Num(spec.epochs() as f64)),
            ]),
            Json::Obj(vec![
                ("rows".into(), Json::Num(spec.rows() as f64)),
                ("cols".into(), Json::Num(spec.cols() as f64)),
                ("digest".into(), Json::Str(format!("{digest:016x}"))),
            ]),
        )?;
    }

    writeln!(
        out,
        "scenario {}: {} rows x {} cols over {} epoch(s), digest {digest:016x}",
        spec.name,
        spec.rows(),
        spec.cols(),
        spec.epochs()
    )?;
    for (e, epoch) in truth.epochs.iter().enumerate() {
        let sizes: Vec<String> = epoch.clusters.iter().map(|c| c.size.to_string()).collect();
        writeln!(
            out,
            "  epoch {e}: cluster sizes [{}], {} outliers",
            sizes.join(","),
            epoch.outliers
        )?;
    }
    if let Some(path) = &out_path {
        writeln!(out, "wrote {}", path.display())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Args;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn tmp(name: &str) -> PathBuf {
        // Keep the extension last: the command infers format from it.
        std::env::temp_dir().join(format!("proclus-cli-scn-{}-{name}", std::process::id()))
    }

    fn write_spec(name: &str, body: &str) -> PathBuf {
        let path = tmp(name);
        std::fs::write(&path, body).unwrap();
        path
    }

    const SPEC: &str = "\
scenario cli-smoke
rows 300
dims 6
clusters 2
seed 11
";

    #[test]
    fn dry_run_prints_digest_and_truth() {
        let spec = write_spec("dry.scn", SPEC);
        let args = Args::parse(
            toks(&format!("--spec {}", spec.display())),
            &["print-canonical"],
        )
        .unwrap();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        std::fs::remove_file(&spec).ok();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains("scenario cli-smoke: 300 rows x 6 cols"),
            "{text}"
        );
        assert!(text.contains("digest "), "{text}");
        assert!(text.contains("epoch 0: cluster sizes ["), "{text}");
        assert!(!text.contains("wrote "), "{text}");
    }

    #[test]
    fn writes_each_format_and_csv_round_trips() {
        let spec = write_spec("fmt.scn", SPEC);
        for (ext, expect_rows) in [("csv", 300usize), ("prcl", 300), ("chunks", 300)] {
            let out = tmp(&format!("fmt-out.{ext}"));
            let args = Args::parse(
                toks(&format!(
                    "--spec {} --out {} --batch-rows 64",
                    spec.display(),
                    out.display()
                )),
                &["print-canonical"],
            )
            .unwrap();
            run(&args, &mut Vec::new()).unwrap();
            if ext == "chunks" {
                let bytes = std::fs::read(&out).unwrap();
                let rows: usize = proclus_data::ChunkReader::new(&bytes)
                    .map(|c| c.unwrap().rows())
                    .sum();
                assert_eq!(rows, expect_rows);
            } else {
                let (m, labels) = crate::io::read_dataset(&out).unwrap();
                assert_eq!(m.rows(), expect_rows);
                assert!(labels.is_some(), "{ext} keeps labels");
            }
            std::fs::remove_file(&out).ok();
        }
        std::fs::remove_file(&spec).ok();
    }

    #[test]
    fn print_canonical_echoes_the_normalized_spec() {
        let spec = write_spec(
            "canon.scn",
            "scenario canon # comment\nrows 100\ndims 4\nclusters 2\n",
        );
        let args = Args::parse(
            toks(&format!("--spec {} --print-canonical", spec.display())),
            &["print-canonical"],
        )
        .unwrap();
        let mut buf = Vec::new();
        run(&args, &mut buf).unwrap();
        std::fs::remove_file(&spec).ok();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("scenario canon\nrows 100\n"), "{text}");
        assert!(text.contains("distribution gaussian\n"), "{text}");
    }

    #[test]
    fn trace_out_writes_scenario_meta() {
        let spec = write_spec("trace.scn", SPEC);
        let dir = tmp("trace-dir");
        let args = Args::parse(
            toks(&format!(
                "--spec {} --trace-out {}",
                spec.display(),
                dir.display()
            )),
            &["print-canonical"],
        )
        .unwrap();
        run(&args, &mut Vec::new()).unwrap();
        std::fs::remove_file(&spec).ok();
        let events = std::fs::read_to_string(dir.join(proclus_obs::EVENTS_FILE)).unwrap();
        let manifest = std::fs::read_to_string(dir.join(proclus_obs::MANIFEST_FILE)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert!(
            events.contains(
                "\"type\":\"scenario_meta\",\"name\":\"cli-smoke\",\"seed\":11,\"epochs\":1"
            ),
            "{events}"
        );
        assert!(manifest.contains("\"digest\""), "{manifest}");
    }

    #[test]
    fn bad_spec_file_is_a_located_error() {
        let spec = write_spec("bad.scn", "scenario bad\nrows ten\n");
        let args = Args::parse(toks(&format!("--spec {}", spec.display())), &[]).unwrap();
        let err = run(&args, &mut Vec::new()).unwrap_err();
        std::fs::remove_file(&spec).ok();
        assert!(err.to_string().contains("line 2"), "{err}");
        // Missing file maps to a located I/O error.
        let args = Args::parse(toks("--spec /nonexistent/x.scn"), &[]).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
    }

    #[test]
    fn unknown_format_and_flags_error() {
        let spec = write_spec("flags.scn", SPEC);
        let out = tmp("flags-out.prcl");
        let args = Args::parse(
            toks(&format!(
                "--spec {} --out {} --format parquet",
                spec.display(),
                out.display()
            )),
            &[],
        )
        .unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
        let args = Args::parse(toks(&format!("--spec {} --bogus 1", spec.display())), &[]).unwrap();
        assert!(run(&args, &mut Vec::new()).is_err());
        std::fs::remove_file(&spec).ok();
    }
}
