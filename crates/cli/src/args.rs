//! Minimal dependency-free argument parsing: `--flag value` pairs plus
//! boolean `--flag` switches, collected into a map with typed getters.

use std::collections::BTreeMap;
use std::fmt;

/// A parsing or validation failure; printed to stderr with exit code 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

fn err(msg: impl ToString) -> ArgError {
    ArgError(msg.to_string())
}

/// Parsed arguments: `--key value` options and bare `--key` switches.
#[derive(Debug, Default, Clone)]
pub struct Args {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
    used: std::cell::RefCell<Vec<String>>,
}

impl Args {
    /// Parse a token stream. `switches` lists the flags that take no
    /// value; everything else starting with `--` expects one.
    pub fn parse<I: IntoIterator<Item = String>>(
        tokens: I,
        switches: &[&str],
    ) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(err(format!("unexpected positional argument {tok:?}")));
            };
            if name.is_empty() {
                return Err(err("empty flag `--`"));
            }
            if switches.contains(&name) {
                out.switches.push(name.to_string());
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| err(format!("--{name} expects a value")))?;
                if out.values.insert(name.to_string(), value).is_some() {
                    return Err(err(format!("--{name} given twice")));
                }
            }
        }
        Ok(out)
    }

    /// Is the boolean switch present?
    pub fn switch(&self, name: &str) -> bool {
        self.used.borrow_mut().push(name.to_string());
        self.switches.iter().any(|s| s == name)
    }

    /// Raw string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.used.borrow_mut().push(name.to_string());
        self.values.get(name).map(|s| s.as_str())
    }

    /// Required string option.
    pub fn require(&self, name: &str) -> Result<&str, ArgError> {
        self.get(name)
            .ok_or_else(|| err(format!("missing required option --{name}")))
    }

    /// Typed option with default.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| err(format!("--{name}: cannot parse {v:?}"))),
        }
    }

    /// Required typed option.
    pub fn require_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        let v = self.require(name)?;
        v.parse()
            .map_err(|_| err(format!("--{name}: cannot parse {v:?}")))
    }

    /// After all getters ran, reject any option the command never asked
    /// about (catches typos like `--sedd 42`).
    pub fn reject_unknown(&self) -> Result<(), ArgError> {
        let used = self.used.borrow();
        for k in self.values.keys() {
            if !used.iter().any(|u| u == k) {
                return Err(err(format!("unknown option --{k}")));
            }
        }
        for s in &self.switches {
            if !used.iter().any(|u| u == s) {
                return Err(err(format!("unknown switch --{s}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let a = Args::parse(toks("--n 100 --labels --seed 7"), &["labels"]).unwrap();
        assert_eq!(a.get("n"), Some("100"));
        assert!(a.switch("labels"));
        assert!(!a.switch("other"));
        assert_eq!(a.get_parsed("seed", 0u64).unwrap(), 7);
        assert_eq!(a.get_parsed("missing", 42u64).unwrap(), 42);
    }

    #[test]
    fn rejects_positional_and_dangling() {
        assert!(Args::parse(toks("file.csv"), &[]).is_err());
        assert!(Args::parse(toks("--n"), &[]).is_err());
        assert!(Args::parse(toks("--n 1 --n 2"), &[]).is_err());
    }

    #[test]
    fn require_and_parse_errors() {
        let a = Args::parse(toks("--k notanumber"), &[]).unwrap();
        assert!(a.require("missing").is_err());
        assert!(a.require_parsed::<usize>("k").is_err());
        assert!(a.get_parsed("k", 1usize).is_err());
    }

    #[test]
    fn reject_unknown_catches_typos() {
        let a = Args::parse(toks("--seed 1 --sedd 2"), &[]).unwrap();
        let _ = a.get("seed");
        assert!(a.reject_unknown().is_err());
        let b = Args::parse(toks("--seed 1"), &[]).unwrap();
        let _ = b.get("seed");
        assert!(b.reject_unknown().is_ok());
    }
}
