//! CLI subcommands.

pub mod clique;
pub mod evaluate;
pub mod fit;
pub mod generate;
pub mod inspect;
pub mod inspect_trace;
pub mod orclus;
pub mod scenario;
pub mod serve;
pub mod stream;
